package schedule

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"openwf/internal/clock"
	"openwf/internal/model"
	"openwf/internal/proto"
	"openwf/internal/space"
)

var t0 = time.Date(2026, 6, 11, 9, 0, 0, 0, time.UTC)

func meta(task string, start, end time.Time) proto.TaskMeta {
	return proto.TaskMeta{
		Task:  model.TaskID(task),
		Mode:  model.Conjunctive,
		Start: start,
		End:   end,
	}
}

func locMeta(task string, start, end time.Time, at space.Point) proto.TaskMeta {
	m := meta(task, start, end)
	m.Location = at
	m.HasLocation = true
	return m
}

func newManager(prefs Preferences, mobility space.Mobility) (*Manager, *clock.Sim) {
	sim := clock.NewSim(t0)
	return NewManager(sim, mobility, prefs), sim
}

func TestCanCommitBasics(t *testing.T) {
	m, _ := newManager(Preferences{}, nil)
	c, err := m.CanCommit(meta("t", t0.Add(time.Hour), t0.Add(2*time.Hour)))
	if err != nil {
		t.Fatalf("CanCommit: %v", err)
	}
	if !c.TravelStart.Equal(c.Start) {
		t.Errorf("no-location commitment has travel: %v vs %v", c.TravelStart, c.Start)
	}
}

func TestCanCommitRejectsEmptyWindow(t *testing.T) {
	m, _ := newManager(Preferences{}, nil)
	if _, err := m.CanCommit(meta("t", t0.Add(time.Hour), t0.Add(time.Hour))); err == nil {
		t.Error("empty window accepted")
	}
}

func TestCanCommitRejectsPastWindow(t *testing.T) {
	m, _ := newManager(Preferences{}, nil)
	if _, err := m.CanCommit(meta("t", t0.Add(-time.Hour), t0.Add(time.Hour))); err == nil {
		t.Error("already-started window accepted")
	}
}

func TestCanCommitWillingness(t *testing.T) {
	m, _ := newManager(Preferences{
		Willing: func(meta proto.TaskMeta) bool { return meta.Task != "dirty" },
	}, nil)
	if _, err := m.CanCommit(meta("dirty", t0.Add(time.Hour), t0.Add(2*time.Hour))); err == nil {
		t.Error("unwilling task accepted")
	}
	if _, err := m.CanCommit(meta("clean", t0.Add(time.Hour), t0.Add(2*time.Hour))); err != nil {
		t.Errorf("willing task rejected: %v", err)
	}
}

func TestCanCommitCapacity(t *testing.T) {
	m, _ := newManager(Preferences{MaxCommitments: 1}, nil)
	if _, err := m.Commit("wf", meta("a", t0.Add(time.Hour), t0.Add(2*time.Hour)), time.Time{}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CanCommit(meta("b", t0.Add(3*time.Hour), t0.Add(4*time.Hour))); err == nil {
		t.Error("over-capacity commitment accepted")
	}
}

func TestCommitConflictDetection(t *testing.T) {
	m, _ := newManager(Preferences{}, nil)
	if _, err := m.Commit("wf", meta("a", t0.Add(time.Hour), t0.Add(2*time.Hour)), time.Time{}); err != nil {
		t.Fatal(err)
	}
	// Overlapping window conflicts.
	if _, err := m.CanCommit(meta("b", t0.Add(90*time.Minute), t0.Add(3*time.Hour))); err == nil {
		t.Error("overlapping commitment accepted")
	}
	// Adjacent window is fine.
	if _, err := m.CanCommit(meta("c", t0.Add(2*time.Hour), t0.Add(3*time.Hour))); err != nil {
		t.Errorf("adjacent commitment rejected: %v", err)
	}
}

func TestTravelTimeBlocking(t *testing.T) {
	// Host at origin, speed 1 m/s; task 60 m away starting in 2 min:
	// travel takes 1 min, so TravelStart is 1 min before Start.
	mobility := space.NewMover(space.Point{}, 1)
	m, _ := newManager(Preferences{}, mobility)
	c, err := m.CanCommit(locMeta("far", t0.Add(2*time.Minute), t0.Add(3*time.Minute), space.Point{X: 60}))
	if err != nil {
		t.Fatalf("CanCommit: %v", err)
	}
	wantTravelStart := t0.Add(time.Minute)
	if !c.TravelStart.Equal(wantTravelStart) {
		t.Errorf("TravelStart = %v, want %v", c.TravelStart, wantTravelStart)
	}
}

func TestTravelInfeasibleTooFar(t *testing.T) {
	mobility := space.NewMover(space.Point{}, 1)
	m, _ := newManager(Preferences{}, mobility)
	// 3600 m away, starting in 2 minutes: cannot arrive.
	_, err := m.CanCommit(locMeta("far", t0.Add(2*time.Minute), t0.Add(time.Hour), space.Point{X: 3600}))
	if err == nil {
		t.Error("unreachable commitment accepted")
	}
}

func TestTravelImmobileHost(t *testing.T) {
	m, _ := newManager(Preferences{}, space.Static{P: space.Point{X: 5}})
	// Task at the host's own position: fine.
	if _, err := m.CanCommit(locMeta("here", t0.Add(time.Hour), t0.Add(2*time.Hour), space.Point{X: 5})); err != nil {
		t.Errorf("in-place task rejected: %v", err)
	}
	// Task elsewhere: impossible.
	if _, err := m.CanCommit(locMeta("there", t0.Add(time.Hour), t0.Add(2*time.Hour), space.Point{X: 6})); err == nil {
		t.Error("travel accepted for immobile host")
	}
}

func TestTravelChainsFromPreviousCommitment(t *testing.T) {
	// After a task at x=60, the host must travel from there (not from
	// the origin) to the next location.
	mobility := space.NewMover(space.Point{}, 1)
	m, _ := newManager(Preferences{}, mobility)
	if _, err := m.Commit("wf", locMeta("first", t0.Add(2*time.Minute), t0.Add(3*time.Minute), space.Point{X: 60}), time.Time{}); err != nil {
		t.Fatal(err)
	}
	// Second task back at the origin 30 s after the first ends: travel
	// from x=60 takes 60 s — infeasible.
	_, err := m.CanCommit(locMeta("second", t0.Add(3*time.Minute+30*time.Second), t0.Add(5*time.Minute), space.Point{}))
	if err == nil {
		t.Error("infeasible chained travel accepted")
	}
	// 90 s after: feasible.
	if _, err := m.CanCommit(locMeta("third", t0.Add(4*time.Minute+30*time.Second), t0.Add(6*time.Minute), space.Point{})); err != nil {
		t.Errorf("feasible chained travel rejected: %v", err)
	}
}

func TestHoldLifecycle(t *testing.T) {
	m, _ := newManager(Preferences{}, nil)
	md := meta("t", t0.Add(time.Hour), t0.Add(2*time.Hour))
	deadline := t0.Add(time.Minute)

	if _, err := m.Hold("wf", md, deadline); err != nil {
		t.Fatal(err)
	}
	if m.Holds() != 1 {
		t.Errorf("Holds = %d", m.Holds())
	}
	// Duplicate hold: ErrAlreadyHeld.
	if _, err := m.Hold("wf", md, deadline); !errors.Is(err, ErrAlreadyHeld) {
		t.Errorf("duplicate Hold = %v, want ErrAlreadyHeld", err)
	}
	// The hold blocks conflicting work.
	if _, err := m.CanCommit(meta("other", t0.Add(90*time.Minute), t0.Add(3*time.Hour))); err == nil {
		t.Error("hold did not reserve the slot")
	}
	// Refresh extends the deadline.
	if _, err := m.RefreshHold("wf", "t", t0.Add(2*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RefreshHold("wf", "missing", deadline); err == nil {
		t.Error("RefreshHold of missing hold succeeded")
	}
	// Expiry after the refreshed deadline.
	if n := m.ExpireHolds(t0.Add(90 * time.Second)); n != 0 {
		t.Errorf("ExpireHolds before deadline released %d", n)
	}
	if n := m.ExpireHolds(t0.Add(3 * time.Minute)); n != 1 {
		t.Errorf("ExpireHolds after deadline released %d", n)
	}
	if m.Holds() != 0 {
		t.Errorf("Holds = %d after expiry", m.Holds())
	}
}

func TestCommitConvertsHold(t *testing.T) {
	m, _ := newManager(Preferences{}, nil)
	md := meta("t", t0.Add(time.Hour), t0.Add(2*time.Hour))
	if _, err := m.Hold("wf", md, t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	c, err := m.Commit("wf", md, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Task != "t" || m.Holds() != 0 {
		t.Errorf("Commit did not convert hold: %+v holds=%d", c, m.Holds())
	}
	if _, ok := m.Get("wf", "t"); !ok {
		t.Error("commitment not stored")
	}
}

func TestCommitWithoutHoldPlansFresh(t *testing.T) {
	m, _ := newManager(Preferences{}, nil)
	md := meta("t", t0.Add(time.Hour), t0.Add(2*time.Hour))
	if _, err := m.Commit("wf", md, time.Time{}); err != nil {
		t.Fatal(err)
	}
	// A second, conflicting fresh commit fails.
	if _, err := m.Commit("wf2", meta("u", t0.Add(time.Hour), t0.Add(2*time.Hour)), time.Time{}); err == nil {
		t.Error("conflicting fresh commit accepted")
	}
}

func TestReleaseAndRemove(t *testing.T) {
	m, _ := newManager(Preferences{}, nil)
	md := meta("t", t0.Add(time.Hour), t0.Add(2*time.Hour))
	if _, err := m.Hold("wf", md, t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	m.Release("wf", "t")
	if m.Holds() != 0 {
		t.Error("Release did not drop hold")
	}
	if _, err := m.Commit("wf", md, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if !m.Remove("wf", "t") {
		t.Error("Remove returned false for existing commitment")
	}
	if m.Remove("wf", "t") {
		t.Error("Remove returned true for missing commitment")
	}
}

func TestCommitmentsSorted(t *testing.T) {
	m, _ := newManager(Preferences{}, nil)
	if _, err := m.Commit("wf", meta("b", t0.Add(3*time.Hour), t0.Add(4*time.Hour)), time.Time{}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit("wf", meta("a", t0.Add(time.Hour), t0.Add(2*time.Hour)), time.Time{}); err != nil {
		t.Fatal(err)
	}
	cs := m.Commitments()
	if len(cs) != 2 || cs[0].Task != "a" || cs[1].Task != "b" {
		t.Errorf("Commitments = %+v", cs)
	}
}

func TestClear(t *testing.T) {
	m, _ := newManager(Preferences{}, nil)
	if _, err := m.Commit("wf", meta("a", t0.Add(time.Hour), t0.Add(2*time.Hour)), time.Time{}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Hold("wf", meta("b", t0.Add(5*time.Hour), t0.Add(6*time.Hour)), t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	m.Clear()
	if len(m.Commitments()) != 0 || m.Holds() != 0 {
		t.Error("Clear left state behind")
	}
}

func TestPosition(t *testing.T) {
	m, sim := newManager(Preferences{}, space.NewMover(space.Point{X: 1}, 2))
	if p := m.Position(); p != (space.Point{X: 1}) {
		t.Errorf("Position = %v", p)
	}
	m.Mobility().Travel(sim.Now(), space.Point{X: 5})
	sim.Advance(2 * time.Second)
	if p := m.Position(); p != (space.Point{X: 5}) {
		t.Errorf("Position after travel = %v", p)
	}
}

// TestFirstHoldWinsArbitration: a later session's overlapping Hold loses
// with ErrSlotBusy and the earlier reservation stands untouched.
func TestFirstHoldWinsArbitration(t *testing.T) {
	m, _ := newManager(Preferences{}, nil)
	first := meta("t-first", t0.Add(time.Hour), t0.Add(2*time.Hour))
	if _, err := m.Hold("wf-a", first, t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	_, err := m.Hold("wf-b", meta("t-second", t0.Add(90*time.Minute), t0.Add(3*time.Hour)), t0.Add(time.Minute))
	if !errors.Is(err, ErrSlotBusy) {
		t.Fatalf("overlapping Hold err = %v, want ErrSlotBusy", err)
	}
	if m.Holds() != 1 {
		t.Fatalf("Holds = %d, want the first session's reservation only", m.Holds())
	}
	held := m.HeldTasks()
	if len(held) != 1 || held[0].Workflow != "wf-a" || held[0].Task != "t-first" {
		t.Fatalf("HeldTasks = %+v, want wf-a/t-first", held)
	}
	// A hold-less Commit into the same slot is refused cleanly too
	// (award after expiry never double-books).
	if _, err := m.Commit("wf-b", meta("t-second", t0.Add(90*time.Minute), t0.Add(3*time.Hour)), time.Time{}); !errors.Is(err, ErrSlotBusy) {
		t.Fatalf("fresh Commit into held slot err = %v, want ErrSlotBusy", err)
	}
}

// TestReleaseWorkflowSweepsSessionHolds: session teardown drops only that
// workflow's reservations.
func TestReleaseWorkflowSweepsSessionHolds(t *testing.T) {
	m, _ := newManager(Preferences{}, nil)
	if _, err := m.Hold("wf-a", meta("a1", t0.Add(time.Hour), t0.Add(2*time.Hour)), t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Hold("wf-a", meta("a2", t0.Add(3*time.Hour), t0.Add(4*time.Hour)), t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Hold("wf-b", meta("b1", t0.Add(5*time.Hour), t0.Add(6*time.Hour)), t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if n := m.ReleaseWorkflow("wf-a"); n != 2 {
		t.Fatalf("ReleaseWorkflow released %d, want 2", n)
	}
	if m.Holds() != 1 {
		t.Fatalf("Holds = %d after sweep, want wf-b's single hold", m.Holds())
	}
}

// assertNoOverlap fails if any two busy intervals (commitments plus
// holds) overlap — the calendar invariant every interleaving must keep.
func assertNoOverlap(t *testing.T, m *Manager) {
	t.Helper()
	busy := append(m.Commitments(), m.HeldTasks()...)
	for i := 0; i < len(busy); i++ {
		for j := i + 1; j < len(busy); j++ {
			if overlaps(busy[i].TravelStart, busy[i].End, busy[j].TravelStart, busy[j].End) {
				t.Fatalf("busy intervals overlap: %s/%s (%v–%v) and %s/%s (%v–%v)",
					busy[i].Workflow, busy[i].Task, busy[i].TravelStart, busy[i].End,
					busy[j].Workflow, busy[j].Task, busy[j].TravelStart, busy[j].End)
			}
		}
	}
}

// TestPropertyRandomInterleavingsNeverOverlap drives seeded random
// interleavings of Hold/RefreshHold/Commit/Release/Remove/ExpireHolds
// across several workflows and asserts after every operation that busy
// intervals never overlap and bookkeeping stays consistent.
func TestPropertyRandomInterleavingsNeverOverlap(t *testing.T) {
	workflows := []string{"wf-0", "wf-1", "wf-2"}
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			m, sim := newManager(Preferences{}, nil)
			// Small discrete time grid so collisions are frequent.
			slot := func() (time.Time, time.Time) {
				start := t0.Add(time.Hour + time.Duration(rng.Intn(24))*15*time.Minute)
				return start, start.Add(time.Duration(1+rng.Intn(3)) * 20 * time.Minute)
			}
			taskOf := func(i int) string { return fmt.Sprintf("t%02d", i) }
			for op := 0; op < 600; op++ {
				wf := workflows[rng.Intn(len(workflows))]
				task := taskOf(rng.Intn(10))
				start, end := slot()
				md := meta(task, start, end)
				switch rng.Intn(6) {
				case 0:
					_, _ = m.Hold(wf, md, sim.Now().Add(time.Duration(rng.Intn(120))*time.Second))
				case 1:
					_, _ = m.RefreshHold(wf, model.TaskID(task), sim.Now().Add(time.Duration(rng.Intn(120))*time.Second))
				case 2:
					_, _ = m.Commit(wf, md, time.Time{})
				case 3:
					m.Release(wf, model.TaskID(task))
				case 4:
					m.Remove(wf, model.TaskID(task))
				case 5:
					sim.Advance(time.Duration(rng.Intn(60)) * time.Second)
					m.ExpireHolds(sim.Now())
				}
				assertNoOverlap(t, m)
			}
		})
	}
}

// TestPropertyConcurrentSessionsNeverOverlap races several goroutines
// (one per workflow) against one manager under -race; the calendar
// invariant must hold at the end regardless of interleaving.
func TestPropertyConcurrentSessionsNeverOverlap(t *testing.T) {
	m, sim := newManager(Preferences{}, nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			wf := fmt.Sprintf("wf-%d", w)
			for op := 0; op < 300; op++ {
				task := fmt.Sprintf("t%02d", rng.Intn(8))
				start := t0.Add(time.Hour + time.Duration(rng.Intn(16))*30*time.Minute)
				md := meta(task, start, start.Add(45*time.Minute))
				switch rng.Intn(5) {
				case 0:
					_, _ = m.Hold(wf, md, sim.Now().Add(time.Minute))
				case 1:
					_, _ = m.Commit(wf, md, time.Time{})
				case 2:
					m.Release(wf, model.TaskID(task))
				case 3:
					m.Remove(wf, model.TaskID(task))
				case 4:
					m.ExpireHolds(sim.Now())
				}
			}
		}()
	}
	wg.Wait()
	assertNoOverlap(t, m)
}

// TestNoOverlappingCommitmentsInvariant: whatever sequence of holds,
// commits, and releases happens, committed busy intervals never overlap.
func TestNoOverlappingCommitmentsInvariant(t *testing.T) {
	m, _ := newManager(Preferences{}, nil)
	for i := 0; i < 40; i++ {
		start := t0.Add(time.Duration(i%13) * 20 * time.Minute).Add(time.Hour)
		md := meta(string(rune('a'+i)), start, start.Add(30*time.Minute))
		_, _ = m.Commit("wf", md, time.Time{})
	}
	cs := m.Commitments()
	for i := 0; i < len(cs); i++ {
		for j := i + 1; j < len(cs); j++ {
			if overlaps(cs[i].TravelStart, cs[i].End, cs[j].TravelStart, cs[j].End) {
				t.Fatalf("commitments overlap: %+v and %+v", cs[i], cs[j])
			}
		}
	}
}

// --- Commitment leases (PR 6 fault tolerance) ---

func TestCommitHeldRequiresLiveHold(t *testing.T) {
	m, _ := newManager(Preferences{}, nil)
	md := meta("t", t0.Add(time.Hour), t0.Add(2*time.Hour))
	// No hold at all: refused even though the slot is free.
	if _, err := m.CommitHeld("wf", "t", time.Time{}); !errors.Is(err, ErrNoHold) {
		t.Fatalf("CommitHeld without hold err = %v, want ErrNoHold", err)
	}
	if _, err := m.Hold("wf", md, t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	c, err := m.CommitHeld("wf", "t", t0.Add(5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if c.Task != "t" || m.Holds() != 0 {
		t.Errorf("CommitHeld did not convert hold: %+v holds=%d", c, m.Holds())
	}
	// An expired-then-swept hold refuses too.
	if _, err := m.Hold("wf2", meta("u", t0.Add(3*time.Hour), t0.Add(4*time.Hour)), t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	m.ExpireHolds(t0.Add(2 * time.Minute))
	if _, err := m.CommitHeld("wf2", "u", time.Time{}); !errors.Is(err, ErrNoHold) {
		t.Fatalf("CommitHeld after expiry err = %v, want ErrNoHold", err)
	}
}

func TestExpireCommitmentsSweepsOnlyLapsedLeases(t *testing.T) {
	m, _ := newManager(Preferences{}, nil)
	// a: lease lapses at +1min; b: lease at +1h; c: no lease (permanent).
	if _, err := m.Commit("wf", meta("a", t0.Add(time.Hour), t0.Add(2*time.Hour)), t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit("wf", meta("b", t0.Add(3*time.Hour), t0.Add(4*time.Hour)), t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit("wf", meta("c", t0.Add(5*time.Hour), t0.Add(6*time.Hour)), time.Time{}); err != nil {
		t.Fatal(err)
	}
	if swept := m.ExpireCommitments(t0.Add(30 * time.Second)); len(swept) != 0 {
		t.Fatalf("early sweep removed %d commitments", len(swept))
	}
	swept := m.ExpireCommitments(t0.Add(2 * time.Minute))
	if len(swept) != 1 || swept[0].Task != "a" {
		t.Fatalf("sweep at +2min = %+v, want just a", swept)
	}
	if _, ok := m.Get("wf", "a"); ok {
		t.Error("swept commitment still stored")
	}
	// The slot is free again for another session.
	if _, err := m.Hold("wf2", meta("a2", t0.Add(time.Hour), t0.Add(2*time.Hour)), t0.Add(3*time.Minute)); err != nil {
		t.Fatalf("slot not returned to the pool: %v", err)
	}
	// b survives until its lease lapses; c never expires.
	swept = m.ExpireCommitments(t0.Add(24 * time.Hour))
	if len(swept) != 1 || swept[0].Task != "b" {
		t.Fatalf("final sweep = %+v, want just b", swept)
	}
}

func TestRefreshCommitLeaseExtendsAndClears(t *testing.T) {
	m, _ := newManager(Preferences{}, nil)
	if err := m.RefreshCommitLease("wf", "t", t0.Add(time.Hour)); err == nil {
		t.Fatal("refresh of missing commitment succeeded")
	}
	if _, err := m.Commit("wf", meta("t", t0.Add(time.Hour), t0.Add(2*time.Hour)), t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := m.RefreshCommitLease("wf", "t", t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if swept := m.ExpireCommitments(t0.Add(10 * time.Minute)); len(swept) != 0 {
		t.Fatalf("refreshed lease swept early: %+v", swept)
	}
	// Zero lease makes the commitment permanent.
	if err := m.RefreshCommitLease("wf", "t", time.Time{}); err != nil {
		t.Fatal(err)
	}
	if swept := m.ExpireCommitments(t0.Add(1000 * time.Hour)); len(swept) != 0 {
		t.Fatalf("permanent commitment swept: %+v", swept)
	}
}

func TestNextLeaseExpiry(t *testing.T) {
	m, _ := newManager(Preferences{}, nil)
	if _, ok := m.NextLeaseExpiry(); ok {
		t.Fatal("NextLeaseExpiry on empty manager")
	}
	if _, err := m.Commit("wf", meta("a", t0.Add(time.Hour), t0.Add(2*time.Hour)), t0.Add(10*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit("wf", meta("b", t0.Add(3*time.Hour), t0.Add(4*time.Hour)), t0.Add(2*time.Minute)); err != nil {
		t.Fatal(err)
	}
	next, ok := m.NextLeaseExpiry()
	if !ok || !next.Equal(t0.Add(2*time.Minute)) {
		t.Fatalf("NextLeaseExpiry = %v ok=%v, want %v", next, ok, t0.Add(2*time.Minute))
	}
	m.ExpireCommitments(t0.Add(3 * time.Minute))
	next, ok = m.NextLeaseExpiry()
	if !ok || !next.Equal(t0.Add(10*time.Minute)) {
		t.Fatalf("NextLeaseExpiry after sweep = %v ok=%v", next, ok)
	}
}

// --- HoldBatch (batched call-for-bids reservations) ---

// TestHoldBatchPartialFailureLeaksNoHolds: a batch mixing feasible and
// infeasible metas reserves exactly the feasible ones — per-task
// declines, never leaked holds, and the failed entries carry errors.
func TestHoldBatchPartialFailureLeaksNoHolds(t *testing.T) {
	m, _ := newManager(Preferences{}, nil)
	deadline := t0.Add(time.Minute)
	// "blocker" belongs to another session and owns 2h–3h.
	if _, err := m.Hold("other", meta("blocker", t0.Add(2*time.Hour), t0.Add(3*time.Hour)), deadline); err != nil {
		t.Fatal(err)
	}
	results := m.HoldBatch("wf", []proto.TaskMeta{
		meta("a", t0.Add(time.Hour), t0.Add(2*time.Hour)),       // fine
		meta("b", t0.Add(150*time.Minute), t0.Add(4*time.Hour)), // overlaps blocker
		meta("c", t0.Add(5*time.Hour), t0.Add(6*time.Hour)),     // fine
		meta("d", t0.Add(-time.Hour), t0),                       // already started
	}, deadline)
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("feasible metas failed: %v, %v", results[0].Err, results[2].Err)
	}
	if !errors.Is(results[1].Err, ErrSlotBusy) {
		t.Fatalf("overlapping meta err = %v, want ErrSlotBusy", results[1].Err)
	}
	if results[3].Err == nil {
		t.Fatal("past window accepted")
	}
	if got := m.Holds(); got != 3 { // blocker + a + c
		t.Fatalf("holds = %d, want 3 (failed entries must not leak)", got)
	}
	if _, err := m.Hold("wf", meta("e", t0.Add(150*time.Minute), t0.Add(4*time.Hour)), deadline); !errors.Is(err, ErrSlotBusy) {
		t.Fatalf("declined slot unexpectedly reusable: %v", err)
	}
}

// TestHoldBatchIntraBatchConflict: within one batch, earlier metas win
// the calendar exactly as sequential Holds would — the second of two
// overlapping metas is declined.
func TestHoldBatchIntraBatchConflict(t *testing.T) {
	m, _ := newManager(Preferences{}, nil)
	results := m.HoldBatch("wf", []proto.TaskMeta{
		meta("a", t0.Add(time.Hour), t0.Add(2*time.Hour)),
		meta("b", t0.Add(90*time.Minute), t0.Add(3*time.Hour)),
	}, t0.Add(time.Minute))
	if results[0].Err != nil {
		t.Fatalf("first meta failed: %v", results[0].Err)
	}
	if !errors.Is(results[1].Err, ErrSlotBusy) {
		t.Fatalf("second overlapping meta err = %v, want ErrSlotBusy", results[1].Err)
	}
	if m.Holds() != 1 {
		t.Fatalf("holds = %d, want 1", m.Holds())
	}
}

// TestHoldBatchRefreshesExistingHold: re-soliciting a task the session
// already reserved (engine replanning) refreshes the hold's deadline and
// keeps its arbitration sequence, mirroring Hold + RefreshHold.
func TestHoldBatchRefreshesExistingHold(t *testing.T) {
	m, sim := newManager(Preferences{}, nil)
	md := meta("a", t0.Add(time.Hour), t0.Add(2*time.Hour))
	if _, err := m.Hold("wf", md, t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	sim.Advance(30 * time.Second)
	results := m.HoldBatch("wf", []proto.TaskMeta{md}, sim.Now().Add(time.Minute))
	if results[0].Err != nil {
		t.Fatalf("refresh via batch failed: %v", results[0].Err)
	}
	if m.Holds() != 1 {
		t.Fatalf("holds = %d, want 1", m.Holds())
	}
	// The original deadline (t0+1min) would have expired by +2min; the
	// refreshed one (t0+30s+1min) has not at +80s.
	if n := m.ExpireHolds(t0.Add(80 * time.Second)); n != 0 {
		t.Fatalf("refreshed hold expired early (%d expired)", n)
	}
	if n := m.ExpireHolds(t0.Add(3 * time.Minute)); n != 1 {
		t.Fatalf("ExpireHolds = %d, want 1", n)
	}
}

// TestHoldBatchMatchesSequentialHolds: for a conflict-free batch the
// batched and per-task paths produce identical reservations.
func TestHoldBatchMatchesSequentialHolds(t *testing.T) {
	metas := []proto.TaskMeta{
		meta("a", t0.Add(time.Hour), t0.Add(2*time.Hour)),
		meta("b", t0.Add(3*time.Hour), t0.Add(4*time.Hour)),
		meta("c", t0.Add(5*time.Hour), t0.Add(6*time.Hour)),
	}
	deadline := t0.Add(time.Minute)
	batched, _ := newManager(Preferences{}, nil)
	results := batched.HoldBatch("wf", metas, deadline)
	sequential, _ := newManager(Preferences{}, nil)
	for i, md := range metas {
		c, err := sequential.Hold("wf", md, deadline)
		if err != nil || results[i].Err != nil {
			t.Fatalf("meta %d: sequential err=%v batch err=%v", i, err, results[i].Err)
		}
		if got := results[i].Commitment; got.Task != c.Task || !got.Start.Equal(c.Start) ||
			!got.End.Equal(c.End) || !got.TravelStart.Equal(c.TravelStart) {
			t.Fatalf("meta %d: batch commitment %+v != sequential %+v", i, got, c)
		}
	}
	if batched.Holds() != sequential.Holds() {
		t.Fatalf("holds: batch %d vs sequential %d", batched.Holds(), sequential.Holds())
	}
}
