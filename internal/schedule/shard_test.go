package schedule

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"openwf/internal/clock"
	"openwf/internal/model"
	"openwf/internal/proto"
	"openwf/internal/space"
	"openwf/internal/testutil"
)

func TestTuningNormalized(t *testing.T) {
	cases := []struct {
		in        Tuning
		shards    int
		bandWidth time.Duration
	}{
		{Tuning{}, DefaultShards, DefaultBandWidth},
		{Tuning{Shards: 1}, 1, DefaultBandWidth},
		{Tuning{Shards: 3}, 4, DefaultBandWidth},
		{Tuning{Shards: 17, BandWidth: time.Second}, 32, time.Second},
		{Tuning{Shards: 1000}, maxShards, DefaultBandWidth},
		{Tuning{Shards: -5, BandWidth: -time.Second}, DefaultShards, DefaultBandWidth},
	}
	for _, tc := range cases {
		got := tc.in.normalized()
		if got.Shards != tc.shards || got.BandWidth != tc.bandWidth {
			t.Errorf("normalized(%+v) = %+v, want Shards=%d BandWidth=%v",
				tc.in, got, tc.shards, tc.bandWidth)
		}
	}
}

func TestBandMaskSpansBoundaries(t *testing.T) {
	m, _ := newManager(Preferences{}, nil)
	// A window inside one band touches exactly one shard bit.
	one := m.bandMask(t0, t0.Add(30*time.Second))
	if n := popcount(one); n != 1 {
		t.Errorf("sub-band window mask has %d bits, want 1", n)
	}
	// A window straddling a band boundary touches two.
	two := m.bandMask(t0.Add(45*time.Second), t0.Add(75*time.Second))
	if n := popcount(two); n != 2 {
		t.Errorf("boundary-straddling mask has %d bits, want 2", n)
	}
	// A window end exactly on a boundary does not touch the next band
	// (intervals are half-open).
	edge := m.bandMask(t0.Add(30*time.Second), t0.Add(time.Minute))
	if n := popcount(edge); n != 1 {
		t.Errorf("boundary-ending mask has %d bits, want 1", n)
	}
	// A window wider than the whole ring touches every shard.
	all := m.bandMask(t0, t0.Add(time.Duration(m.nshards+1)*m.bandWidth))
	if all != m.allMask {
		t.Errorf("ring-spanning mask = %x, want allMask %x", all, m.allMask)
	}
}

func popcount(mask uint64) int {
	n := 0
	for ; mask != 0; mask &= mask - 1 {
		n++
	}
	return n
}

// errString collapses an error to a comparable string ("" for nil) so
// the differential test can require byte-identical failures — including
// conflict attribution, which names the blocking workflow and task.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// TestCrossShardDifferentialVsUnshardedOracle drives identical seeded
// random operation sequences — with execution windows sized and offset
// to straddle band boundaries — against a default-sharded manager and a
// Shards: 1 oracle (a single lock, trivially equivalent to the pre-
// sharding implementation). Every return value, every error string
// (conflict attribution included), and the full calendar state must
// match, and busy intervals must never overlap.
func TestCrossShardDifferentialVsUnshardedOracle(t *testing.T) {
	workflows := []string{"wf-0", "wf-1", "wf-2", "wf-3"}
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			prefs := Preferences{MaxCommitments: 12}
			sharded := NewManagerTuned(clock.NewSim(t0), space.NewMover(space.Point{}, 1), prefs,
				Tuning{Shards: 16, BandWidth: time.Minute})
			oracle := NewManagerTuned(clock.NewSim(t0), space.NewMover(space.Point{}, 1), prefs,
				Tuning{Shards: 1, BandWidth: time.Minute})

			// Windows start at second granularity within a few minutes
			// of t0+1h and run 15 s – 5 min, so most straddle at least
			// one minute-band boundary and many span several.
			window := func() (time.Time, time.Time) {
				start := t0.Add(time.Hour +
					time.Duration(rng.Intn(8))*time.Minute +
					time.Duration(rng.Intn(60))*time.Second)
				return start, start.Add(time.Duration(15+rng.Intn(285)) * time.Second)
			}
			randMeta := func() proto.TaskMeta {
				task := fmt.Sprintf("t%02d", rng.Intn(12))
				start, end := window()
				if rng.Intn(5) == 0 {
					// Located tasks: travel (speed 1 m/s, ≤ 45 m)
					// extends the busy interval into earlier bands.
					return locMeta(task, start, end, space.Point{X: float64(rng.Intn(45))})
				}
				return meta(task, start, end)
			}

			compareState := func(op int) {
				t.Helper()
				if got, want := sharded.Commitments(), oracle.Commitments(); !reflect.DeepEqual(got, want) {
					t.Fatalf("op %d: commitments diverge\nsharded: %+v\noracle:  %+v", op, got, want)
				}
				if got, want := sharded.HeldTasks(), oracle.HeldTasks(); !reflect.DeepEqual(got, want) {
					t.Fatalf("op %d: held tasks diverge\nsharded: %+v\noracle:  %+v", op, got, want)
				}
				if got, want := sharded.Holds(), oracle.Holds(); got != want {
					t.Fatalf("op %d: hold counts diverge: sharded %d, oracle %d", op, got, want)
				}
				assertNoOverlap(t, sharded)
			}

			for op := 0; op < 500; op++ {
				wf := workflows[rng.Intn(len(workflows))]
				deadline := t0.Add(time.Duration(30+rng.Intn(120)) * time.Second)
				switch rng.Intn(12) {
				case 0, 1, 2:
					md := randMeta()
					cs, es := sharded.Hold(wf, md, deadline)
					co, eo := oracle.Hold(wf, md, deadline)
					if errString(es) != errString(eo) || !reflect.DeepEqual(cs, co) {
						t.Fatalf("op %d: Hold(%s, %s) diverges:\nsharded: %+v, %q\noracle:  %+v, %q",
							op, wf, md.Task, cs, errString(es), co, errString(eo))
					}
				case 3:
					metas := make([]proto.TaskMeta, 1+rng.Intn(4))
					for i := range metas {
						metas[i] = randMeta()
					}
					rs := sharded.HoldBatch(wf, metas, deadline)
					ro := oracle.HoldBatch(wf, metas, deadline)
					for i := range rs {
						if errString(rs[i].Err) != errString(ro[i].Err) ||
							!reflect.DeepEqual(rs[i].Commitment, ro[i].Commitment) {
							t.Fatalf("op %d: HoldBatch[%d] (%s) diverges:\nsharded: %+v, %q\noracle:  %+v, %q",
								op, i, metas[i].Task, rs[i].Commitment, errString(rs[i].Err),
								ro[i].Commitment, errString(ro[i].Err))
						}
					}
				case 4:
					md := randMeta()
					var lease time.Time
					if rng.Intn(2) == 0 {
						lease = t0.Add(time.Duration(1+rng.Intn(10)) * time.Minute)
					}
					cs, es := sharded.Commit(wf, md, lease)
					co, eo := oracle.Commit(wf, md, lease)
					if errString(es) != errString(eo) || !reflect.DeepEqual(cs, co) {
						t.Fatalf("op %d: Commit(%s, %s) diverges:\nsharded: %+v, %q\noracle:  %+v, %q",
							op, wf, md.Task, cs, errString(es), co, errString(eo))
					}
				case 5:
					task := model.TaskID(fmt.Sprintf("t%02d", rng.Intn(12)))
					cs, es := sharded.CommitHeld(wf, task, time.Time{})
					co, eo := oracle.CommitHeld(wf, task, time.Time{})
					if errString(es) != errString(eo) || !reflect.DeepEqual(cs, co) {
						t.Fatalf("op %d: CommitHeld(%s, %s) diverges: %q vs %q",
							op, wf, task, errString(es), errString(eo))
					}
				case 6:
					task := model.TaskID(fmt.Sprintf("t%02d", rng.Intn(12)))
					cs, es := sharded.RefreshHold(wf, task, deadline)
					co, eo := oracle.RefreshHold(wf, task, deadline)
					if errString(es) != errString(eo) || !reflect.DeepEqual(cs, co) {
						t.Fatalf("op %d: RefreshHold(%s, %s) diverges: %q vs %q",
							op, wf, task, errString(es), errString(eo))
					}
				case 7:
					task := model.TaskID(fmt.Sprintf("t%02d", rng.Intn(12)))
					sharded.Release(wf, task)
					oracle.Release(wf, task)
				case 8:
					if ns, no := sharded.ReleaseWorkflow(wf), oracle.ReleaseWorkflow(wf); ns != no {
						t.Fatalf("op %d: ReleaseWorkflow(%s) diverges: %d vs %d", op, wf, ns, no)
					}
				case 9:
					now := t0.Add(time.Duration(rng.Intn(180)) * time.Second)
					if ns, no := sharded.ExpireHolds(now), oracle.ExpireHolds(now); ns != no {
						t.Fatalf("op %d: ExpireHolds diverges: %d vs %d", op, ns, no)
					}
				case 10:
					now := t0.Add(time.Duration(rng.Intn(12)) * time.Minute)
					es, eo := sharded.ExpireCommitments(now), oracle.ExpireCommitments(now)
					if !reflect.DeepEqual(es, eo) {
						t.Fatalf("op %d: ExpireCommitments diverges:\nsharded: %+v\noracle:  %+v", op, es, eo)
					}
				case 11:
					md := randMeta()
					cs, es := sharded.CanCommit(md)
					co, eo := oracle.CanCommit(md)
					if errString(es) != errString(eo) || !reflect.DeepEqual(cs, co) {
						t.Fatalf("op %d: CanCommit(%s) diverges: %q vs %q",
							op, md.Task, errString(es), errString(eo))
					}
				}
				if op%50 == 0 {
					compareState(op)
				}
			}
			compareState(500)
		})
	}
}

// TestScheduleFastPathAllocBounds pins the hot read and write paths of
// the sharded calendar: the shard indirection (mask computation, bitmask
// lock sets, per-shard maps) must not add per-operation allocations over
// the single-lock implementation.
func TestScheduleFastPathAllocBounds(t *testing.T) {
	start, end := t0.Add(time.Hour), t0.Add(time.Hour+10*time.Minute)
	md := meta("hot", start, end)

	t.Run("CanCommit", func(t *testing.T) {
		m, _ := newManager(Preferences{}, nil)
		if _, err := m.Commit("wf-bg", meta("bg", t0.Add(3*time.Hour), t0.Add(4*time.Hour)), time.Time{}); err != nil {
			t.Fatal(err)
		}
		testutil.AllocBound(t, 0, func() {
			if _, err := m.CanCommit(md); err != nil {
				t.Fatal(err)
			}
		})
	})

	t.Run("HoldRelease", func(t *testing.T) {
		m, _ := newManager(Preferences{}, nil)
		deadline := t0.Add(time.Hour)
		// Steady state: one record allocation per hold; the maps reuse
		// their buckets across the release/re-hold cycle.
		testutil.AllocBound(t, 1, func() {
			if _, err := m.Hold("wf", md, deadline); err != nil {
				t.Fatal(err)
			}
			m.Release("wf", model.TaskID("hot"))
		})
	})
}
