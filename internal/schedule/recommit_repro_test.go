package schedule

import (
	"testing"
	"time"

	"openwf/internal/clock"
)

func TestRecommitStaleBandRecord(t *testing.T) {
	for _, shards := range []int{1, 16} {
		m := NewManagerTuned(clock.NewSim(t0), nil, Preferences{}, Tuning{Shards: shards, BandWidth: time.Minute})
		if _, err := m.Commit("wf", meta("a", t0.Add(time.Hour), t0.Add(time.Hour+2*time.Minute)), time.Time{}); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Commit("wf", meta("a", t0.Add(2*time.Hour), t0.Add(2*time.Hour+2*time.Minute)), time.Time{}); err != nil {
			t.Fatalf("shards=%d re-commit: %v", shards, err)
		}
		if _, err := m.CanCommit(meta("b", t0.Add(time.Hour), t0.Add(time.Hour+time.Minute))); err != nil {
			t.Errorf("shards=%d: old slot still busy after re-commit: %v", shards, err)
		}
	}
}
