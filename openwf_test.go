package openwf_test

import (
	"context"
	"testing"
	"time"

	"openwf"
)

func lbl(ls ...string) []openwf.LabelID {
	out := make([]openwf.LabelID, len(ls))
	for i, l := range ls {
		out[i] = openwf.LabelID(l)
	}
	return out
}

func TestConstructWorkflowLocal(t *testing.T) {
	frags := []*openwf.Fragment{
		openwf.MustFragment("f1", openwf.Task{
			ID: "t1", Mode: openwf.Conjunctive, Inputs: lbl("a"), Outputs: lbl("m"),
		}),
		openwf.MustFragment("f2", openwf.Task{
			ID: "t2", Mode: openwf.Conjunctive, Inputs: lbl("m"), Outputs: lbl("g"),
		}),
	}
	w, err := openwf.ConstructWorkflow(frags, openwf.MustSpec(lbl("a"), lbl("g")))
	if err != nil {
		t.Fatal(err)
	}
	if w.NumTasks() != 2 {
		t.Fatalf("workflow:\n%v", w)
	}
	if _, err := openwf.ConstructWorkflow(frags, openwf.MustSpec(lbl("a"), lbl("nothing"))); err == nil {
		t.Fatal("unsatisfiable spec constructed")
	}
}

func TestServiceHelpers(t *testing.T) {
	s := openwf.SimpleService("t")
	if s.Descriptor.Task != "t" || s.Descriptor.Duration != 0 {
		t.Errorf("SimpleService = %+v", s.Descriptor)
	}
	ts := openwf.TimedService("t", time.Second, nil)
	if ts.Descriptor.Duration != time.Second {
		t.Errorf("TimedService = %+v", ts.Descriptor)
	}
	ls := openwf.LocatedService("t", openwf.Point{X: 1, Y: 2}, time.Second, nil)
	if !ls.Descriptor.HasLocation || ls.Descriptor.Location.X != 1 {
		t.Errorf("LocatedService = %+v", ls.Descriptor)
	}
}

func TestLinkModels(t *testing.T) {
	m := openwf.WirelessLinkModel(time.Millisecond, 0, 1e6)
	lat, drop := m("a", "b", 125, nil)
	if drop || lat != 2*time.Millisecond {
		t.Errorf("wireless model = %v, %v", lat, drop)
	}
	if openwf.Wireless80211g() == nil {
		t.Error("Wireless80211g returned nil")
	}
}

// TestFacadeEndToEnd runs the complete pipeline through the public API
// only: community, construction, allocation, execution, goal data.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := openwf.DefaultEngineConfig()
	cfg.StartDelay = 200 * time.Millisecond
	cfg.TaskWindow = 30 * time.Millisecond
	com, err := openwf.NewCommunity([]openwf.HostSpec{
		{ID: "asker"},
		{
			ID: "knower",
			Fragments: []*openwf.Fragment{
				openwf.MustFragment("know", openwf.Task{
					ID: "answer", Mode: openwf.Conjunctive,
					Inputs: lbl("question"), Outputs: lbl("answered"),
				}),
			},
			Services: []openwf.ServiceRegistration{
				openwf.TimedService("answer", time.Millisecond,
					func(inv openwf.Invocation) (openwf.Outputs, error) {
						return openwf.Outputs{"answered": []byte("42")}, nil
					}),
			},
		},
	}, openwf.WithEngineConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer com.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	plan, err := com.Initiate(ctx, "asker", openwf.MustSpec(lbl("question"), lbl("answered")))
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Allocations["answer"]; got != "knower" {
		t.Fatalf("Allocations = %v", plan.Allocations)
	}
	report, err := com.Execute(ctx, "asker", plan, map[openwf.LabelID][]byte{
		"question": []byte("meaning of life"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Completed || string(report.Goals["answered"]) != "42" {
		t.Fatalf("report = %+v", report)
	}
}

// TestFacadeInitiateAll: N allocation sessions multiplexed over one
// initiator through the facade, with the worker-pool option applied.
func TestFacadeInitiateAll(t *testing.T) {
	cfg := openwf.DefaultEngineConfig()
	cfg.StartDelay = 200 * time.Millisecond
	cfg.TaskWindow = 30 * time.Millisecond
	frag := func(name, task, in, out string) *openwf.Fragment {
		return openwf.MustFragment(name, openwf.Task{
			ID: openwf.TaskID(task), Mode: openwf.Conjunctive,
			Inputs: lbl(in), Outputs: lbl(out),
		})
	}
	com, err := openwf.NewCommunity([]openwf.HostSpec{
		{ID: "asker"},
		{
			ID:        "w1",
			Fragments: []*openwf.Fragment{frag("k1", "job1", "in1", "out1")},
			Services:  []openwf.ServiceRegistration{openwf.SimpleService("job1")},
		},
		{
			ID:        "w2",
			Fragments: []*openwf.Fragment{frag("k2", "job2", "in2", "out2")},
			Services:  []openwf.ServiceRegistration{openwf.SimpleService("job2")},
		},
		{
			ID:        "w3",
			Fragments: []*openwf.Fragment{frag("k3", "job3", "in3", "out3")},
			Services:  []openwf.ServiceRegistration{openwf.SimpleService("job3")},
		},
	}, openwf.WithEngineConfig(cfg), openwf.WithHostWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer com.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	specs := []openwf.Spec{
		openwf.MustSpec(lbl("in1"), lbl("out1")),
		openwf.MustSpec(lbl("in2"), lbl("out2")),
		openwf.MustSpec(lbl("in3"), lbl("out3")),
	}
	plans, err := com.InitiateAll(ctx, "asker", specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range plans {
		if p == nil {
			t.Fatalf("plan %d missing", i)
		}
		want := openwf.Addr("w" + string(rune('1'+i)))
		task := openwf.TaskID("job" + string(rune('1'+i)))
		if got := p.Allocations[task]; got != want {
			t.Errorf("plan %d: %s allocated to %q, want %q", i, task, got, want)
		}
	}
}
