// Package openwf is an open workflow management system: a Go
// implementation of "Achieving Coordination Through Dynamic Construction
// of Open Workflows" (Thomas, Wilson, Roman, Gill — WUCSE-2009-14,
// MIDDLEWARE 2009).
//
// Open workflows invert the classical workflow paradigm: instead of
// executing a handcrafted static graph, a transient community of mobile
// hosts dynamically constructs a custom workflow from workflow fragments
// (knowhow) scattered across its members, allocates the workflow's tasks
// by auction against each member's capabilities, schedule, and location,
// and executes it in a fully decentralized fashion.
//
// The package is a facade over the internal subsystems:
//
//   - the workflow model (labels, tasks, fragments, composition, pruning),
//   - the construction algorithm (supergraph coloring, Algorithm 1),
//   - the communications layer (simulated network and TCP),
//   - the execution subsystem (fragment/service/schedule/execution
//     managers, auction participation), and
//   - the construction subsystem (workflow manager, auction manager).
//
// # Quickstart
//
// Every blocking entry point takes a context.Context; cancellation and
// deadlines propagate through community queries, auctions, and
// execution:
//
//	com, err := openwf.NewCommunity([]openwf.HostSpec{
//	    {ID: "requester"},
//	    {
//	        ID: "worker",
//	        Fragments: []*openwf.Fragment{openwf.MustFragment("know",
//	            openwf.Task{ID: "do it", Mode: openwf.Conjunctive,
//	                Inputs:  []openwf.LabelID{"need"},
//	                Outputs: []openwf.LabelID{"done"}})},
//	        Services: []openwf.ServiceRegistration{openwf.SimpleService("do it")},
//	    },
//	})
//	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
//	defer cancel()
//	plan, err := com.Initiate(ctx, "requester", openwf.MustSpec(
//	    []openwf.LabelID{"need"}, []openwf.LabelID{"done"}))
//	report, err := com.Execute(ctx, "requester", plan, nil)
//
// Communities are open: any member may initiate at any time, so a host
// routinely carries several allocation sessions at once. Initiate calls
// may overlap freely, or a batch can be multiplexed explicitly:
//
//	plans, err := com.InitiateAll(ctx, "requester", []openwf.Spec{specA, specB, specC})
//
// Sessions are isolated end to end (per-workflow dispatcher queues on
// every host, per-session auction state, first-hold-wins schedule
// arbitration); see DESIGN.md §8.
//
// For server-shaped workloads — many specifications constructed
// concurrently against one pool of knowhow — snapshot the knowhow once
// and plan from it in parallel, with no further community traffic:
//
//	store, err := com.CollectKnowhow(ctx, "requester")
//	planner, err := openwf.NewPlannerFromStore(store)
//	// Any number of goroutines:
//	w, err := planner.Construct(ctx, spec)
//
// See the examples directory for complete programs, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the reproduction of the
// paper's evaluation.
package openwf

import (
	"time"

	"openwf/internal/community"
	"openwf/internal/core"
	"openwf/internal/engine"
	"openwf/internal/model"
	"openwf/internal/proto"
	"openwf/internal/schedule"
	"openwf/internal/service"
	"openwf/internal/space"
	"openwf/internal/spec"
	"openwf/internal/transport/inmem"
)

// Core model types.
type (
	// LabelID is the semantic identifier of a label (condition/data).
	LabelID = model.LabelID
	// TaskID is the semantic identifier of an abstract task.
	TaskID = model.TaskID
	// Task is a single abstract behavior with labeled pre/postconditions.
	Task = model.Task
	// Mode states how a task consumes inputs (Conjunctive/Disjunctive).
	Mode = model.Mode
	// Fragment is a small workflow encoding one participant's knowhow.
	Fragment = model.Fragment
	// Workflow is a validated bipartite task/label DAG.
	Workflow = model.Workflow
	// Graph is a possibly-invalid workflow graph (e.g. a supergraph).
	Graph = model.Graph
	// Spec is a problem specification: triggers ι and goals ω.
	Spec = spec.Spec
	// Constraints are the richer specification options of §5.1.
	Constraints = spec.Constraints
)

// Task modes.
const (
	// Conjunctive tasks require all of their inputs.
	Conjunctive = model.Conjunctive
	// Disjunctive tasks require exactly one of their inputs.
	Disjunctive = model.Disjunctive
)

// Community and host types.
type (
	// Addr identifies a host in the community.
	Addr = proto.Addr
	// Community is a running set of participant hosts.
	Community = community.Community
	// HostSpec describes one participant device.
	HostSpec = community.HostSpec
	// Transport selects the communications substrate.
	Transport = community.Transport
	// EngineConfig tunes the workflow engine.
	EngineConfig = engine.Config
	// Observer receives construction and auction events (see
	// WithObserver). All fields are optional.
	Observer = engine.Observer
	// Plan is a constructed and fully allocated workflow.
	Plan = engine.Plan
	// Report summarizes one workflow execution.
	Report = engine.Report
	// Preferences expresses a host's scheduling willingness.
	Preferences = schedule.Preferences
	// Commitment is a scheduled service invocation.
	Commitment = schedule.Commitment
	// TaskMeta is per-task auction/execution metadata.
	TaskMeta = proto.TaskMeta
	// FragmentStore is an immutable, shareable snapshot of collected
	// knowhow; any number of Planners and goroutines may construct
	// against one store concurrently.
	FragmentStore = core.Store
	// ConstructionResult carries one construction's metrics (explored
	// region, supergraph size, collection rounds).
	ConstructionResult = core.Result
)

// Transports.
const (
	// InMem is the simulated network (the paper's simulation setup).
	InMem = community.InMem
	// TCP uses real loopback sockets (the empirical configuration).
	TCP = community.TCP
)

// Service types.
type (
	// ServiceRegistration couples a service descriptor with its body.
	ServiceRegistration = service.Registration
	// ServiceDescriptor declares one service a host offers.
	ServiceDescriptor = service.Descriptor
	// ServiceFunc is a computational service body.
	ServiceFunc = service.Func
	// Invocation is what a service sees when executed.
	Invocation = service.Invocation
	// Outputs carries the labels a service produced.
	Outputs = service.Outputs
	// Point is a position on the plane (meters).
	Point = space.Point
)

// LinkModel shapes the simulated network's latency and loss.
type LinkModel = inmem.LinkModel

// NewFragment builds and validates a workflow fragment.
func NewFragment(name string, tasks ...Task) (*Fragment, error) {
	return model.NewFragment(name, tasks...)
}

// MustFragment is NewFragment that panics on invalid input; intended for
// statically known fragment literals.
func MustFragment(name string, tasks ...Task) *Fragment {
	return model.MustFragment(name, tasks...)
}

// NewSpec builds and validates a problem specification.
func NewSpec(triggers, goals []LabelID) (Spec, error) {
	return spec.New(triggers, goals)
}

// MustSpec is NewSpec that panics on invalid input.
func MustSpec(triggers, goals []LabelID) Spec {
	return spec.Must(triggers, goals)
}

// Option configures NewCommunity and NewPlanner. Options that concern
// only the community substrate (transport, link model, seed) are
// ignored by NewPlanner, which is a purely local facility.
type Option func(*settings)

// settings accumulates the facade's functional options.
type settings struct {
	comm        community.Options
	engine      engine.Config
	engineSet   bool
	observer    Observer
	observerSet bool
}

// engineConfig resolves the effective engine configuration: the
// configured one (or the default), with the observer wired in.
func (s *settings) engineConfig() engine.Config {
	cfg := s.engine
	if !s.engineSet {
		cfg = engine.DefaultConfig()
	}
	if s.observerSet {
		cfg.Observer = s.observer
	}
	return cfg
}

func apply(opts []Option) *settings {
	s := &settings{}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// WithTransport selects the communications substrate (default InMem).
func WithTransport(t Transport) Option {
	return func(s *settings) { s.comm.Transport = t }
}

// WithEngineConfig sets every host's workflow-engine configuration. For
// a Planner it supplies the construction constraints (§5.1).
func WithEngineConfig(cfg EngineConfig) Option {
	return func(s *settings) { s.engine, s.engineSet = cfg, true }
}

// WithLinkModel shapes the simulated network's latency and loss
// (in-memory transport only).
func WithLinkModel(m LinkModel) Option {
	return func(s *settings) { s.comm.LinkModel = m }
}

// WithObserver registers callbacks for construction and auction events.
// Callbacks must be fast, non-blocking, and safe for concurrent use.
func WithObserver(o Observer) Option {
	return func(s *settings) { s.observer, s.observerSet = o, true }
}

// WithSeed seeds the simulated network's randomness (jitter, loss).
func WithSeed(seed int64) Option {
	return func(s *settings) { s.comm.Seed = seed }
}

// WithBidWindow overrides the participants' bid deadline window.
func WithBidWindow(d time.Duration) Option {
	return func(s *settings) { s.comm.BidWindow = d }
}

// WithStoreAndForward buffers messages across partitions on the
// in-memory network (delay-tolerant delivery) instead of losing them.
func WithStoreAndForward() Option {
	return func(s *settings) { s.comm.StoreAndForward = true }
}

// WithHostWorkers bounds each host's inbound-envelope worker pool: how
// many workflow sessions a participant serves concurrently. Each
// workflow's messages are always handled sequentially in arrival order;
// the bound caps cross-workflow parallelism (default 8).
func WithHostWorkers(n int) Option {
	return func(s *settings) { s.comm.HostWorkers = n }
}

// NewCommunity builds and starts a community of hosts.
func NewCommunity(hosts []HostSpec, opts ...Option) (*Community, error) {
	s := apply(opts)
	cfg := s.engineConfig()
	s.comm.Engine = &cfg
	return community.New(s.comm, hosts...)
}

// DefaultEngineConfig returns the engine configuration the evaluation
// uses: incremental fragment collection with feasibility filtering.
func DefaultEngineConfig() EngineConfig { return engine.DefaultConfig() }

// SimpleService registers a zero-duration service for a task — enough for
// simulations and condition-only workflows.
func SimpleService(task TaskID) ServiceRegistration {
	return ServiceRegistration{
		Descriptor: ServiceDescriptor{Task: task, Specialization: 0.5},
	}
}

// TimedService registers a service that takes the given duration, with an
// optional computational body.
func TimedService(task TaskID, duration time.Duration, fn ServiceFunc) ServiceRegistration {
	return ServiceRegistration{
		Descriptor: ServiceDescriptor{Task: task, Specialization: 0.5, Duration: duration},
		Fn:         fn,
	}
}

// LocatedService registers a service pinned to a location: commitments to
// it include the travel time to get there.
func LocatedService(task TaskID, at Point, duration time.Duration, fn ServiceFunc) ServiceRegistration {
	return ServiceRegistration{
		Descriptor: ServiceDescriptor{
			Task: task, Specialization: 0.5, Duration: duration,
			Location: at, HasLocation: true,
		},
		Fn: fn,
	}
}

// NewFragmentStore builds an immutable fragment-store snapshot from the
// given knowhow. Extend a snapshot with store.With; snapshot a running
// community's pooled knowhow with Community.CollectKnowhow.
func NewFragmentStore(frags ...*Fragment) (*FragmentStore, error) {
	return core.NewStore(frags...)
}

// ConstructWorkflow runs the construction algorithm locally over a set of
// fragments, without any community: it merges the fragments into a
// supergraph and extracts a workflow satisfying the specification. Useful
// for testing knowhow before deployment. It is one-shot sugar over
// NewPlanner; construct repeatedly or concurrently through a Planner.
func ConstructWorkflow(frags []*Fragment, s Spec) (*Workflow, error) {
	st, err := core.NewStore(frags...)
	if err != nil {
		return nil, err
	}
	ws, err := st.NewWorkspace()
	if err != nil {
		return nil, err
	}
	res, err := ws.Construct(s)
	if err != nil {
		return nil, err
	}
	return res.Workflow, nil
}

// WirelessLinkModel models an 802.11-style medium for the simulated
// network: per-message base latency plus serialization at the bandwidth,
// plus uniform jitter. Wireless80211g below matches the paper's empirical
// setup.
func WirelessLinkModel(base, jitter time.Duration, bandwidthBps float64) LinkModel {
	return inmem.Wireless(base, jitter, bandwidthBps)
}

// Wireless80211g is the link model for the paper's empirical
// configuration: 802.11g at 54 Mbit/s with ~0.5 ms per-hop MAC overhead.
func Wireless80211g() LinkModel {
	return inmem.Wireless(500*time.Microsecond, 200*time.Microsecond, 54e6)
}
