// Package openwf is an open workflow management system: a Go
// implementation of "Achieving Coordination Through Dynamic Construction
// of Open Workflows" (Thomas, Wilson, Roman, Gill — WUCSE-2009-14,
// MIDDLEWARE 2009).
//
// Open workflows invert the classical workflow paradigm: instead of
// executing a handcrafted static graph, a transient community of mobile
// hosts dynamically constructs a custom workflow from workflow fragments
// (knowhow) scattered across its members, allocates the workflow's tasks
// by auction against each member's capabilities, schedule, and location,
// and executes it in a fully decentralized fashion.
//
// The package is a facade over the internal subsystems:
//
//   - the workflow model (labels, tasks, fragments, composition, pruning),
//   - the construction algorithm (supergraph coloring, Algorithm 1),
//   - the communications layer (simulated network and TCP),
//   - the execution subsystem (fragment/service/schedule/execution
//     managers, auction participation), and
//   - the construction subsystem (workflow manager, auction manager).
//
// # Quickstart
//
//	com, err := openwf.NewCommunity(openwf.Options{},
//	    openwf.HostSpec{
//	        ID:        "requester",
//	    },
//	    openwf.HostSpec{
//	        ID:        "worker",
//	        Fragments: []*openwf.Fragment{openwf.MustFragment("know",
//	            openwf.Task{ID: "do it", Mode: openwf.Conjunctive,
//	                Inputs:  []openwf.LabelID{"need"},
//	                Outputs: []openwf.LabelID{"done"}})},
//	        Services: []openwf.ServiceRegistration{openwf.SimpleService("do it")},
//	    },
//	)
//	plan, err := com.Initiate("requester", openwf.MustSpec(
//	    []openwf.LabelID{"need"}, []openwf.LabelID{"done"}))
//	report, err := com.Execute("requester", plan, nil, 10*time.Second)
//
// See the examples directory for complete programs, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the reproduction of the
// paper's evaluation.
package openwf

import (
	"time"

	"openwf/internal/community"
	"openwf/internal/core"
	"openwf/internal/engine"
	"openwf/internal/model"
	"openwf/internal/proto"
	"openwf/internal/schedule"
	"openwf/internal/service"
	"openwf/internal/space"
	"openwf/internal/spec"
	"openwf/internal/transport/inmem"
)

// Core model types.
type (
	// LabelID is the semantic identifier of a label (condition/data).
	LabelID = model.LabelID
	// TaskID is the semantic identifier of an abstract task.
	TaskID = model.TaskID
	// Task is a single abstract behavior with labeled pre/postconditions.
	Task = model.Task
	// Mode states how a task consumes inputs (Conjunctive/Disjunctive).
	Mode = model.Mode
	// Fragment is a small workflow encoding one participant's knowhow.
	Fragment = model.Fragment
	// Workflow is a validated bipartite task/label DAG.
	Workflow = model.Workflow
	// Graph is a possibly-invalid workflow graph (e.g. a supergraph).
	Graph = model.Graph
	// Spec is a problem specification: triggers ι and goals ω.
	Spec = spec.Spec
	// Constraints are the richer specification options of §5.1.
	Constraints = spec.Constraints
)

// Task modes.
const (
	// Conjunctive tasks require all of their inputs.
	Conjunctive = model.Conjunctive
	// Disjunctive tasks require exactly one of their inputs.
	Disjunctive = model.Disjunctive
)

// Community and host types.
type (
	// Addr identifies a host in the community.
	Addr = proto.Addr
	// Community is a running set of participant hosts.
	Community = community.Community
	// Options configure a community (transport, latency model, engine).
	Options = community.Options
	// HostSpec describes one participant device.
	HostSpec = community.HostSpec
	// Transport selects the communications substrate.
	Transport = community.Transport
	// EngineConfig tunes the workflow engine.
	EngineConfig = engine.Config
	// Plan is a constructed and fully allocated workflow.
	Plan = engine.Plan
	// Report summarizes one workflow execution.
	Report = engine.Report
	// Preferences expresses a host's scheduling willingness.
	Preferences = schedule.Preferences
	// Commitment is a scheduled service invocation.
	Commitment = schedule.Commitment
	// TaskMeta is per-task auction/execution metadata.
	TaskMeta = proto.TaskMeta
)

// Transports.
const (
	// InMem is the simulated network (the paper's simulation setup).
	InMem = community.InMem
	// TCP uses real loopback sockets (the empirical configuration).
	TCP = community.TCP
)

// Service types.
type (
	// ServiceRegistration couples a service descriptor with its body.
	ServiceRegistration = service.Registration
	// ServiceDescriptor declares one service a host offers.
	ServiceDescriptor = service.Descriptor
	// ServiceFunc is a computational service body.
	ServiceFunc = service.Func
	// Invocation is what a service sees when executed.
	Invocation = service.Invocation
	// Outputs carries the labels a service produced.
	Outputs = service.Outputs
	// Point is a position on the plane (meters).
	Point = space.Point
)

// LinkModel shapes the simulated network's latency and loss.
type LinkModel = inmem.LinkModel

// NewFragment builds and validates a workflow fragment.
func NewFragment(name string, tasks ...Task) (*Fragment, error) {
	return model.NewFragment(name, tasks...)
}

// MustFragment is NewFragment that panics on invalid input; intended for
// statically known fragment literals.
func MustFragment(name string, tasks ...Task) *Fragment {
	return model.MustFragment(name, tasks...)
}

// NewSpec builds and validates a problem specification.
func NewSpec(triggers, goals []LabelID) (Spec, error) {
	return spec.New(triggers, goals)
}

// MustSpec is NewSpec that panics on invalid input.
func MustSpec(triggers, goals []LabelID) Spec {
	return spec.Must(triggers, goals)
}

// NewCommunity builds and starts a community of hosts.
func NewCommunity(opts Options, hosts ...HostSpec) (*Community, error) {
	return community.New(opts, hosts...)
}

// DefaultEngineConfig returns the engine configuration the evaluation
// uses: incremental fragment collection with feasibility filtering.
func DefaultEngineConfig() EngineConfig { return engine.DefaultConfig() }

// SimpleService registers a zero-duration service for a task — enough for
// simulations and condition-only workflows.
func SimpleService(task TaskID) ServiceRegistration {
	return ServiceRegistration{
		Descriptor: ServiceDescriptor{Task: task, Specialization: 0.5},
	}
}

// TimedService registers a service that takes the given duration, with an
// optional computational body.
func TimedService(task TaskID, duration time.Duration, fn ServiceFunc) ServiceRegistration {
	return ServiceRegistration{
		Descriptor: ServiceDescriptor{Task: task, Specialization: 0.5, Duration: duration},
		Fn:         fn,
	}
}

// LocatedService registers a service pinned to a location: commitments to
// it include the travel time to get there.
func LocatedService(task TaskID, at Point, duration time.Duration, fn ServiceFunc) ServiceRegistration {
	return ServiceRegistration{
		Descriptor: ServiceDescriptor{
			Task: task, Specialization: 0.5, Duration: duration,
			Location: at, HasLocation: true,
		},
		Fn: fn,
	}
}

// ConstructWorkflow runs the construction algorithm locally over a set of
// fragments, without any community: it merges the fragments into a
// supergraph and extracts a workflow satisfying the specification. Useful
// for testing knowhow before deployment.
func ConstructWorkflow(frags []*Fragment, s Spec) (*Workflow, error) {
	g, err := core.CollectAll(frags)
	if err != nil {
		return nil, err
	}
	res, err := core.Construct(g, s)
	if err != nil {
		return nil, err
	}
	return res.Workflow, nil
}

// WirelessLinkModel models an 802.11-style medium for the simulated
// network: per-message base latency plus serialization at the bandwidth,
// plus uniform jitter. Wireless80211g below matches the paper's empirical
// setup.
func WirelessLinkModel(base, jitter time.Duration, bandwidthBps float64) LinkModel {
	return inmem.Wireless(base, jitter, bandwidthBps)
}

// Wireless80211g is the link model for the paper's empirical
// configuration: 802.11g at 54 Mbit/s with ~0.5 ms per-hop MAC overhead.
func Wireless80211g() LinkModel {
	return inmem.Wireless(500*time.Microsecond, 200*time.Microsecond, 54e6)
}
