module openwf

go 1.24

// Tool/test-scoped dependency: powers the openwfvet analyzer suite
// (internal/analysis, cmd/openwfvet) only. No non-test package under
// internal/ outside internal/analysis may import it — depcheck (one of
// the openwfvet analyzers) enforces that, so the runtime import graph
// stays dependency-free. The tree is vendored (vendor/golang.org/x/tools)
// from the subset the Go distribution itself ships under
// src/cmd/vendor, so builds never need the network; go.sum pins the
// vendored file tree (see internal/analysis/vendorhash_test.go).
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
