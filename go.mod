module openwf

go 1.24
