package openwf_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"openwf"
)

func plannerFragments() []*openwf.Fragment {
	return []*openwf.Fragment{
		openwf.MustFragment("f1", openwf.Task{
			ID: "t1", Mode: openwf.Conjunctive, Inputs: lbl("a"), Outputs: lbl("m"),
		}),
		openwf.MustFragment("f2", openwf.Task{
			ID: "t2", Mode: openwf.Conjunctive, Inputs: lbl("m"), Outputs: lbl("g"),
		}),
		openwf.MustFragment("f3", openwf.Task{
			ID: "shortcut", Mode: openwf.Conjunctive, Inputs: lbl("a"), Outputs: lbl("g"),
		}),
	}
}

func TestPlannerConstruct(t *testing.T) {
	p, err := openwf.NewPlanner(plannerFragments())
	if err != nil {
		t.Fatal(err)
	}
	w, err := p.Construct(context.Background(), openwf.MustSpec(lbl("a"), lbl("g")))
	if err != nil {
		t.Fatal(err)
	}
	if w.NumTasks() == 0 {
		t.Fatalf("empty workflow:\n%v", w)
	}
	if _, err := p.Construct(context.Background(), openwf.MustSpec(lbl("a"), lbl("nothing"))); err == nil {
		t.Fatal("unsatisfiable spec constructed")
	}
}

func TestPlannerCanceledContext(t *testing.T) {
	p, err := openwf.NewPlanner(plannerFragments())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Construct(ctx, openwf.MustSpec(lbl("a"), lbl("g"))); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPlannerConstraintsAndObserver(t *testing.T) {
	var constructions atomic.Int64
	cfg := openwf.DefaultEngineConfig()
	cfg.Constraints.ExcludeTasks = []openwf.TaskID{"shortcut"}
	p, err := openwf.NewPlanner(plannerFragments(),
		openwf.WithEngineConfig(cfg),
		openwf.WithObserver(openwf.Observer{
			ConstructionDone: func(id string, res openwf.ConstructionResult) {
				constructions.Add(1)
			},
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	w, err := p.Construct(context.Background(), openwf.MustSpec(lbl("a"), lbl("g")))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Task("shortcut"); ok {
		t.Fatalf("excluded task selected:\n%v", w)
	}
	if w.NumTasks() != 2 {
		t.Fatalf("workflow:\n%v", w)
	}
	if constructions.Load() != 1 {
		t.Errorf("observer saw %d constructions, want 1", constructions.Load())
	}
}

// TestPlannerConcurrentConstruct: ≥8 goroutines constructing against one
// shared fragment store (run with -race in CI).
func TestPlannerConcurrentConstruct(t *testing.T) {
	store, err := openwf.NewFragmentStore(plannerFragments()...)
	if err != nil {
		t.Fatal(err)
	}
	p, err := openwf.NewPlannerFromStore(store)
	if err != nil {
		t.Fatal(err)
	}
	s := openwf.MustSpec(lbl("a"), lbl("g"))
	want, err := p.Construct(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 100; it++ {
				w, err := p.Construct(context.Background(), s)
				if err != nil {
					errs <- err
					return
				}
				if !w.Equal(want) {
					errs <- errors.New("concurrent construction produced a different workflow")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCommunityCollectKnowhowPlanner: the server-shaped flow — snapshot a
// community's pooled knowhow once, then plan locally from the snapshot.
func TestCommunityCollectKnowhowPlanner(t *testing.T) {
	com, err := openwf.NewCommunity([]openwf.HostSpec{
		{ID: "asker"},
		{ID: "k1", Fragments: []*openwf.Fragment{plannerFragments()[0]}},
		{ID: "k2", Fragments: []*openwf.Fragment{plannerFragments()[1]}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer com.Close()

	store, err := com.CollectKnowhow(context.Background(), "asker")
	if err != nil {
		t.Fatal(err)
	}
	if store.NumFragments() != 2 {
		t.Fatalf("collected %d fragments, want 2", store.NumFragments())
	}
	p, err := openwf.NewPlannerFromStore(store)
	if err != nil {
		t.Fatal(err)
	}
	w, err := p.Construct(context.Background(), openwf.MustSpec(lbl("a"), lbl("g")))
	if err != nil {
		t.Fatal(err)
	}
	if w.NumTasks() != 2 {
		t.Fatalf("workflow:\n%v", w)
	}
}
