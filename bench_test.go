// Benchmarks reproducing the paper's evaluation (§5): one benchmark per
// result figure plus ablations of the design choices called out in
// DESIGN.md. Each benchmark op measures the paper's timed window — from
// the specification being given to the initiating host until every task
// of the resulting workflow is allocated.
//
// The full parameter sweeps with per-path-length averages (the actual
// figures) are produced by cmd/figures; the benchmarks here pin
// representative grid points so `go test -bench` tracks them over time.
//
//	go test -bench=. -benchmem
package openwf_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"openwf/internal/community"
	"openwf/internal/core"
	"openwf/internal/evalgen"
	"openwf/internal/spec"
)

// benchPoint measures one (tasks, hosts, path length) grid point.
func benchPoint(b *testing.B, cfg evalgen.ExperimentConfig, length int) {
	b.Helper()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sc, err := evalgen.Generate(cfg.Tasks, rng)
	if err != nil {
		b.Fatal(err)
	}
	if sc.MaxPathLength() < length {
		b.Skipf("supergraph max path %d < requested %d", sc.MaxPathLength(), length)
	}
	comm, hosts, err := evalgen.BuildCommunity(sc, cfg, rng)
	if err != nil {
		b.Fatal(err)
	}
	defer comm.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, ok := sc.SamplePath(length, rng)
		if !ok {
			b.Skipf("no path of length %d", length)
		}
		comm.ResetSchedules()
		b.StartTimer()
		plan, err := comm.Initiate(context.Background(), hosts[0], s)
		if err != nil {
			b.Fatal(err)
		}
		if plan.Workflow.NumTasks() != length {
			b.Fatalf("workflow has %d tasks, want %d", plan.Workflow.NumTasks(), length)
		}
	}
}

// BenchmarkFigure4 — simulation, 100 task nodes, community size 2–15:
// time grows with path length and roughly linearly with host count.
func BenchmarkFigure4(b *testing.B) {
	for _, hosts := range []int{2, 3, 5, 10, 15} {
		for _, length := range []int{4, 8, 12} {
			b.Run(fmt.Sprintf("hosts=%d/pathlen=%d", hosts, length), func(b *testing.B) {
				benchPoint(b, evalgen.ExperimentConfig{
					Tasks: 100, Hosts: hosts, Seed: 1,
				}, length)
			})
		}
	}
}

// BenchmarkFigure5 — simulation, 2 hosts, supergraph size 25–500: the
// growth rate in path length increases with the number of task nodes.
func BenchmarkFigure5(b *testing.B) {
	for _, tasks := range []int{25, 50, 100, 250, 500} {
		for _, length := range []int{4, 8} {
			b.Run(fmt.Sprintf("tasks=%d/pathlen=%d", tasks, length), func(b *testing.B) {
				benchPoint(b, evalgen.ExperimentConfig{
					Tasks: tasks, Hosts: 2, Seed: 1,
				}, length)
			})
		}
	}
}

// BenchmarkFigure6 — the empirical configuration: 4 hosts on a modeled
// 802.11g ad hoc network (54 Mbit/s, ~1.2 ms per hop). One order of
// magnitude slower than the zero-latency simulation, matching the paper's
// Figure 5 → Figure 6 shift.
func BenchmarkFigure6(b *testing.B) {
	for _, tasks := range []int{25, 50, 100} {
		for _, length := range []int{4, 8} {
			b.Run(fmt.Sprintf("tasks=%d/pathlen=%d", tasks, length), func(b *testing.B) {
				benchPoint(b, evalgen.ExperimentConfig{
					Tasks: tasks, Hosts: 4, Seed: 1,
					LinkModel: evalgen.Wireless80211g(),
				}, length)
			})
		}
	}
}

// BenchmarkFigure6TCP — the same grid over real loopback TCP sockets
// (kernel networking instead of the latency model).
func BenchmarkFigure6TCP(b *testing.B) {
	for _, tasks := range []int{25, 100} {
		b.Run(fmt.Sprintf("tasks=%d/pathlen=4", tasks), func(b *testing.B) {
			benchPoint(b, evalgen.ExperimentConfig{
				Tasks: tasks, Hosts: 4, Seed: 1,
				Transport: community.TCP,
			}, 4)
		})
	}
}

// BenchmarkAblationCollection — incremental (on-demand) fragment
// collection vs gathering the community's entire knowledge up front
// (§3.1's simplifying assumption). Incremental wins by transferring only
// the fragments the colored region needs.
func BenchmarkAblationCollection(b *testing.B) {
	for _, incremental := range []bool{true, false} {
		name := "incremental"
		if !incremental {
			name = "full-collection"
		}
		b.Run(name, func(b *testing.B) {
			engCfg := evalgen.EvalEngineConfig()
			engCfg.Incremental = incremental
			benchPoint(b, evalgen.ExperimentConfig{
				Tasks: 250, Hosts: 5, Seed: 1, Engine: &engCfg,
			}, 8)
		})
	}
}

// BenchmarkAblationFeasibility — service-feasibility filtering during
// construction on vs off (extra query rounds vs risk of replanning).
func BenchmarkAblationFeasibility(b *testing.B) {
	for _, feasibility := range []bool{true, false} {
		name := "feasibility-on"
		if !feasibility {
			name = "feasibility-off"
		}
		b.Run(name, func(b *testing.B) {
			engCfg := evalgen.EvalEngineConfig()
			engCfg.Feasibility = feasibility
			benchPoint(b, evalgen.ExperimentConfig{
				Tasks: 100, Hosts: 5, Seed: 1, Engine: &engCfg,
			}, 8)
		})
	}
}

// BenchmarkAblationMarshal — gob-encoding every message on the simulated
// network (realistic serialization cost) vs passing envelopes by value.
func BenchmarkAblationMarshal(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "marshal-on"
		if disable {
			name = "marshal-off"
		}
		b.Run(name, func(b *testing.B) {
			benchPoint(b, evalgen.ExperimentConfig{
				Tasks: 100, Hosts: 5, Seed: 1, DisableMarshal: disable,
			}, 8)
		})
	}
}

// BenchmarkAblationQueryPattern — pairwise (sequential) community queries
// vs broadcast (parallel). The paper remarks that even broadcast keeps the
// initiator's response processing linear in the community size; the
// wireless model makes the latency difference visible.
func BenchmarkAblationQueryPattern(b *testing.B) {
	for _, parallel := range []bool{false, true} {
		name := "pairwise"
		if parallel {
			name = "broadcast"
		}
		b.Run(name, func(b *testing.B) {
			engCfg := evalgen.EvalEngineConfig()
			engCfg.ParallelQuery = parallel
			benchPoint(b, evalgen.ExperimentConfig{
				Tasks: 100, Hosts: 10, Seed: 1, Engine: &engCfg,
				LinkModel: evalgen.Wireless80211g(),
			}, 8)
		})
	}
}

// BenchmarkBaselineStaticWorkflow — the CiAN-style baseline: the workflow
// is pre-specified (no knowledge discovery, no construction) and only
// distributed allocation runs. The gap to BenchmarkFigure4 at the same
// grid point is the price of dynamic construction.
func BenchmarkBaselineStaticWorkflow(b *testing.B) {
	for _, hosts := range []int{2, 5, 15} {
		b.Run(fmt.Sprintf("hosts=%d/pathlen=8", hosts), func(b *testing.B) {
			cfg := evalgen.ExperimentConfig{Tasks: 100, Hosts: hosts, Seed: 1}
			rng := rand.New(rand.NewSource(cfg.Seed))
			sc, err := evalgen.Generate(cfg.Tasks, rng)
			if err != nil {
				b.Fatal(err)
			}
			comm, hostAddrs, err := evalgen.BuildCommunity(sc, cfg, rng)
			if err != nil {
				b.Fatal(err)
			}
			defer comm.Close()
			initiator, ok := comm.Host(hostAddrs[0])
			if !ok {
				b.Fatal("no initiator")
			}
			// Pre-construct workflows outside the timed loop.
			frags, err := sc.Fragments()
			if err != nil {
				b.Fatal(err)
			}
			g, err := core.CollectAll(frags)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, ok := sc.SamplePath(8, rng)
				if !ok {
					b.Skip("no path of length 8")
				}
				res, err := core.Construct(g, s)
				if err != nil {
					b.Fatal(err)
				}
				comm.ResetSchedules()
				b.StartTimer()
				if _, err := initiator.Engine.AllocateWorkflow(context.Background(), res.Workflow, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConcurrentConstruct — N goroutines constructing against one
// shared immutable fragment store through a workspace pool (the PR 2
// Planner architecture). Aggregate throughput should scale with
// GOMAXPROCS because the store is never written and every goroutine owns
// its workspace's coloring scratch:
//
//	go test -bench=ConcurrentConstruct -cpu=1,2,4,8 .
func BenchmarkConcurrentConstruct(b *testing.B) {
	for _, tasks := range []int{100, 500} {
		b.Run(fmt.Sprintf("tasks=%d", tasks), func(b *testing.B) {
			pool, specs, err := evalgen.ConcurrentConstructSetup(tasks, 256, 6, 1)
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			var next atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					s := specs[next.Add(1)%uint64(len(specs))]
					if _, err := pool.Construct(ctx, s); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkConstructionAlgorithm — the pure coloring algorithm against a
// fully assembled supergraph, no network: the algorithmic floor under the
// figures above.
func BenchmarkConstructionAlgorithm(b *testing.B) {
	for _, tasks := range []int{25, 100, 500} {
		b.Run(fmt.Sprintf("tasks=%d", tasks), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			sc, err := evalgen.Generate(tasks, rng)
			if err != nil {
				b.Fatal(err)
			}
			frags, err := sc.Fragments()
			if err != nil {
				b.Fatal(err)
			}
			g, err := core.CollectAll(frags)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, ok := sc.SamplePath(6, rng)
				if !ok {
					b.Skip("no path of length 6")
				}
				b.StartTimer()
				if _, err := core.Construct(g, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConcurrentInitiate — K allocation sessions multiplexed over
// one initiator host on the modeled 802.11g medium (PR 4). The path is
// latency-dominated, so the concurrent rows should approach the
// inflight=1 batch time while serial grows linearly in K; ns/op is per
// batch of K Initiates. The full serial-vs-concurrent grid lives in
// cmd/benchjson (BENCH_PR4.json).
func BenchmarkConcurrentInitiate(b *testing.B) {
	for _, row := range []struct {
		inflight int
		serial   bool
	}{
		{1, false}, {4, true}, {4, false},
	} {
		mode := "concurrent"
		if row.serial {
			mode = "serial"
		}
		b.Run(fmt.Sprintf("inflight=%d/mode=%s", row.inflight, mode), func(b *testing.B) {
			comm, hosts, pool, err := evalgen.ConcurrentInitiateSetup(5, 32)
			if err != nil {
				b.Fatal(err)
			}
			defer comm.Close()
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				comm.ResetSchedules()
				batch := make([]spec.Spec, row.inflight)
				for j := range batch {
					batch[j] = pool[(i*row.inflight+j)%len(pool)]
				}
				b.StartTimer()
				if row.serial {
					for _, s := range batch {
						if _, err := comm.Initiate(ctx, hosts[0], s); err != nil {
							b.Fatal(err)
						}
					}
				} else {
					if _, err := comm.InitiateAll(ctx, hosts[0], batch); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkDiscoveryInitiate — capability-index routing vs full
// broadcast (PR 9): one Initiate over a community where only 5 fixed
// providers are relevant and every other member is junk. The
// roundtrips/op metric is the story: indexed rows stay flat as the
// community grows, broadcast rows grow O(hosts). The full grid
// (100/300/1000 hosts) runs in cmd/benchjson (BENCH_PR9.json).
func BenchmarkDiscoveryInitiate(b *testing.B) {
	for _, hosts := range []int{10, 100} {
		for _, mode := range []string{"indexed", "broadcast"} {
			b.Run(fmt.Sprintf("hosts=%d/mode=%s", hosts, mode), func(b *testing.B) {
				ctx := context.Background()
				comm, initiator, s, err := evalgen.DiscoverySetup(ctx, hosts, 5, 6, mode == "indexed", 1)
				if err != nil {
					b.Fatal(err)
				}
				defer comm.Close()
				comm.Network().ResetCounters()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					comm.ResetSchedules()
					b.StartTimer()
					plan, err := comm.Initiate(ctx, initiator, s)
					if err != nil {
						b.Fatal(err)
					}
					if plan.Workflow.NumTasks() != 6 {
						b.Fatalf("workflow has %d tasks", plan.Workflow.NumTasks())
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(comm.Network().Stats().Calls)/float64(b.N), "roundtrips/op")
			})
		}
	}
}
