// Command benchjson runs the pinned performance grid points with
// testing.Benchmark and emits them as JSON, seeding the repo's perf
// trajectory: each PR that touches a hot path records its numbers
// (ns/op, B/op, allocs/op) in a BENCH_PR<n>.json at the repo root, so
// regressions are visible in review without re-running the full sweep.
//
//	go run ./cmd/benchjson -o BENCH_PR5.json
//
// The grid points mirror the root bench_test.go benchmarks that the
// paper's evaluation (§5) pins: the pure construction algorithm at
// supergraph sizes 25–500, the per-envelope marshal cost of the binary
// wire codec against its gob oracle (PR 3), the broadcast knowhow-query
// path over the modeled 802.11g medium, the cached workflow accessors
// (PR 2), the concurrent-construction grid (goroutines × supergraph
// size) against a shared fragment store, the concurrent-allocation
// grid (PR 4: K in-flight Initiates multiplexed over one host, serial
// vs concurrent), and the batched-CFB differential on the BroadcastQuery
// grid (PR 5: batched vs per-task calls for bids, with the transport's
// Call round-trip count as its own column).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"openwf/internal/core"
	"openwf/internal/evalgen"
	"openwf/internal/model"
	"openwf/internal/proto"
	"openwf/internal/spec"
)

// result is one benchmark grid point.
type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// RoundTrips is the inmem transport's Call round-trip count per
	// operation (requests only — each opens one request/reply exchange),
	// reported by the distributed grid points via b.ReportMetric. The
	// batched CFB protocol (PR 5) is measured directly on this column.
	RoundTrips float64 `json:"round_trips_per_op,omitempty"`
}

// report is the emitted file.
type report struct {
	GoVersion  string   `json:"go_version"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Benchmarks []result `json:"benchmarks"`
}

// chainWorkflow builds a valid n-task chain workflow for the cached
// accessor grid point.
func chainWorkflow(b *testing.B, n int) *model.Workflow {
	b.Helper()
	g := model.NewGraph()
	for i := 0; i < n; i++ {
		t := model.Task{
			ID:      model.TaskID(fmt.Sprintf("t%04d", i)),
			Mode:    model.Conjunctive,
			Inputs:  []model.LabelID{model.LabelID(fmt.Sprintf("l%04d", i))},
			Outputs: []model.LabelID{model.LabelID(fmt.Sprintf("l%04d", i+1))},
		}
		if err := g.AddTask(t); err != nil {
			b.Fatal(err)
		}
	}
	w, err := model.NewWorkflow(g)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// queryEnvelope is the broadcast-hot knowhow query shape measured by the
// marshal grid (mirrors internal/proto's benchEnvelope).
func queryEnvelope() proto.Envelope {
	return proto.Envelope{
		From: "host-a", To: "host-b", ReqID: 42, Workflow: "wf-1",
		Body: proto.FragmentQuery{Labels: []model.LabelID{
			"breakfast ingredients", "lunch ingredients", "omelet bar setup",
		}},
	}
}

// bidEnvelope is the auction-hot reply shape.
func bidEnvelope() proto.Envelope {
	return proto.Envelope{
		From: "host-b", To: "host-a", ReqID: 43, Workflow: "wf-1",
		Body: proto.Bid{
			Task: "cook omelets", ServicesOffered: 3,
			Specialization: 0.75, Deadline: time.Unix(1700000000, 0),
		},
	}
}

func main() {
	out := flag.String("o", "BENCH_PR5.json", "output file (- for stdout)")
	flag.Parse()

	var results []result
	run := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		res := result{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			RoundTrips:  r.Extra["roundtrips/op"],
		}
		results = append(results, res)
		fmt.Fprintf(os.Stderr, "%-44s %10d iters %14.0f ns/op %10d B/op %8d allocs/op %8.0f rt/op\n",
			name, r.N, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.RoundTrips)
	}

	// The pure coloring algorithm against a fully assembled supergraph
	// (BenchmarkConstructionAlgorithm's grid).
	for _, tasks := range []int{25, 100, 500} {
		tasks := tasks
		run(fmt.Sprintf("ConstructionAlgorithm/tasks=%d", tasks), func(b *testing.B) {
			b.ReportAllocs()
			rng := rand.New(rand.NewSource(1))
			sc, err := evalgen.Generate(tasks, rng)
			if err != nil {
				b.Fatal(err)
			}
			frags, err := sc.Fragments()
			if err != nil {
				b.Fatal(err)
			}
			g, err := core.CollectAll(frags)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, ok := sc.SamplePath(6, rng)
				if !ok {
					b.Skip("no path of length 6")
				}
				b.StartTimer()
				if _, err := core.Construct(g, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// O(1) reset: must stay flat in graph size.
	for _, tasks := range []int{100, 500} {
		tasks := tasks
		run(fmt.Sprintf("ResetColoring/tasks=%d", tasks), func(b *testing.B) {
			b.ReportAllocs()
			rng := rand.New(rand.NewSource(1))
			sc, err := evalgen.Generate(tasks, rng)
			if err != nil {
				b.Fatal(err)
			}
			frags, err := sc.Fragments()
			if err != nil {
				b.Fatal(err)
			}
			g, err := core.CollectAll(frags)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.ResetColoring()
			}
		})
	}

	// Concurrent construction against a shared immutable fragment store
	// (the PR 2 Planner architecture): goroutines × supergraph size.
	// ns/op is wall time per construction across all goroutines; on a
	// multi-core host it drops as goroutines rise (the store is
	// read-only and every goroutine owns its workspace scratch), while
	// on a single-core host it stays flat apart from scheduling
	// overhead.
	for _, tasks := range []int{100, 500} {
		for _, goroutines := range []int{1, 2, 4, 8} {
			tasks, goroutines := tasks, goroutines
			run(fmt.Sprintf("ConcurrentConstruct/goroutines=%d/tasks=%d", goroutines, tasks), func(b *testing.B) {
				b.ReportAllocs()
				pool, specs, err := evalgen.ConcurrentConstructSetup(tasks, 256, 6, 1)
				if err != nil {
					b.Fatal(err)
				}
				ctx := context.Background()
				var next atomic.Uint64
				// RunParallel spawns GOMAXPROCS*p goroutines and
				// SetParallelism cannot go below GOMAXPROCS, so pin
				// GOMAXPROCS itself to make each row run exactly its
				// labeled goroutine count regardless of the host.
				prev := runtime.GOMAXPROCS(goroutines)
				defer runtime.GOMAXPROCS(prev)
				b.SetParallelism(1)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						s := specs[next.Add(1)%uint64(len(specs))]
						if _, err := pool.Construct(ctx, s); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}

	// Cached workflow accessors (PR 2): TopoOrder on a 500-task chain
	// was ~384µs/op when recomputed per call, ~3µs/op served from the
	// construction-time cache.
	run("WorkflowTopoOrder/tasks=500", func(b *testing.B) {
		b.ReportAllocs()
		w := chainWorkflow(b, 500)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := w.TopoOrder(); len(got) != 500 {
				b.Fatalf("len = %d", len(got))
			}
		}
	})

	// Per-envelope marshal cost on the transports' pooled path (the
	// active wire codec; kept name-compatible with earlier BENCH files).
	run("EncodeToPooled", func(b *testing.B) {
		b.ReportAllocs()
		env := queryEnvelope()
		pool := sync.Pool{New: func() any { return new(bytes.Buffer) }}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf := pool.Get().(*bytes.Buffer)
			buf.Reset()
			if err := proto.EncodeTo(buf, env); err != nil {
				b.Fatal(err)
			}
			pool.Put(buf)
		}
	})

	// Marshal grid (PR 3): full encode+decode per envelope for the two
	// broadcast-hot message shapes, binary wire codec vs the gob oracle.
	// The acceptance bar is ≥5x on ns/op with allocs/op ≤5 for the
	// binary rows.
	for _, shape := range []struct {
		name string
		env  proto.Envelope
	}{
		{"FragmentQuery", queryEnvelope()},
		{"Bid", bidEnvelope()},
	} {
		for _, codec := range []struct {
			name   string
			encode func(*bytes.Buffer, proto.Envelope) error
			decode func([]byte) (proto.Envelope, error)
		}{
			{"binary", proto.EncodeTo, proto.Decode},
			{"gob", proto.EncodeGobTo, proto.DecodeGob},
		} {
			shape, codec := shape, codec
			run(fmt.Sprintf("Marshal/%s/codec=%s", shape.name, codec.name), func(b *testing.B) {
				b.ReportAllocs()
				pool := sync.Pool{New: func() any { return new(bytes.Buffer) }}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					buf := pool.Get().(*bytes.Buffer)
					buf.Reset()
					if err := codec.encode(buf, shape.env); err != nil {
						b.Fatal(err)
					}
					if _, err := codec.decode(buf.Bytes()); err != nil {
						b.Fatal(err)
					}
					pool.Put(buf)
				}
			})
		}
	}

	// Broadcast knowhow-query grid (PR 3, re-pinned by PR 5): a full
	// Initiate on the modeled 802.11g medium with broadcast (parallel)
	// community queries — the distributed path where the medium
	// dominates. The unsuffixed rows run the batched CFB protocol (the
	// default); the batch=off rows run the per-task oracle, so the grid
	// reads the round-collapse directly in both ns/op and the RoundTrips
	// column (inmem Stats().Calls per Initiate).
	for _, hosts := range []int{5, 10} {
		for _, batch := range []bool{true, false} {
			hosts, batch := hosts, batch
			name := fmt.Sprintf("BroadcastQuery/hosts=%d", hosts)
			if !batch {
				name += "/batch=off"
			}
			run(name, func(b *testing.B) {
				b.ReportAllocs()
				engCfg := evalgen.EvalEngineConfig()
				engCfg.ParallelQuery = true
				engCfg.BatchCFB = batch
				rng := rand.New(rand.NewSource(1))
				sc, err := evalgen.Generate(100, rng)
				if err != nil {
					b.Fatal(err)
				}
				comm, hostAddrs, err := evalgen.BuildCommunity(sc, evalgen.ExperimentConfig{
					Tasks: 100, Hosts: hosts, Seed: 1,
					LinkModel: evalgen.Wireless80211g(),
					Engine:    &engCfg,
				}, rng)
				if err != nil {
					b.Fatal(err)
				}
				defer comm.Close()
				comm.Network().ResetCounters()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					s, ok := sc.SamplePath(8, rng)
					if !ok {
						b.Skip("no path of length 8")
					}
					comm.ResetSchedules()
					b.StartTimer()
					plan, err := comm.Initiate(context.Background(), hostAddrs[0], s)
					if err != nil {
						b.Fatal(err)
					}
					if plan.Workflow.NumTasks() != 8 {
						b.Fatalf("workflow has %d tasks", plan.Workflow.NumTasks())
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(comm.Network().Stats().Calls)/float64(b.N), "roundtrips/op")
			})
		}
	}

	// Concurrent allocation sessions (PR 4): K Initiates multiplexed
	// over one initiator host on the modeled 802.11g medium. The path is
	// latency-dominated (pairwise solicitation, query rounds), so
	// overlapping K sessions' waits is where the throughput comes from:
	// mode=serial runs the batch back to back, mode=concurrent
	// multiplexes it through Community.InitiateAll and the hosts'
	// session dispatchers. ns/op is per batch of K, so the acceptance
	// bar — ≥2x aggregate throughput at 4 in-flight — reads directly as
	// serial/inflight=4 ns/op ≥ 2 × concurrent/inflight=4 ns/op.
	for _, row := range []struct {
		inflight int
		serial   bool
	}{
		{1, false}, {2, false}, {4, true}, {4, false}, {8, false},
	} {
		row := row
		mode := "concurrent"
		if row.serial {
			mode = "serial"
		}
		run(fmt.Sprintf("ConcurrentInitiate/hosts=5/inflight=%d/mode=%s", row.inflight, mode), func(b *testing.B) {
			b.ReportAllocs()
			comm, hostAddrs, pool, err := evalgen.ConcurrentInitiateSetup(5, 32)
			if err != nil {
				b.Fatal(err)
			}
			defer comm.Close()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				comm.ResetSchedules()
				batch := make([]spec.Spec, row.inflight)
				for j := range batch {
					batch[j] = pool[(i*row.inflight+j)%len(pool)]
				}
				b.StartTimer()
				if row.serial {
					for _, s := range batch {
						if _, err := comm.Initiate(ctx, hostAddrs[0], s); err != nil {
							b.Fatal(err)
						}
					}
				} else {
					if _, err := comm.InitiateAll(ctx, hostAddrs[0], batch); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}

	rep := report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Benchmarks: results,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
