// Command benchjson runs the pinned performance grid points with
// testing.Benchmark and emits them as JSON, seeding the repo's perf
// trajectory: each PR that touches a hot path records its numbers
// (ns/op, B/op, allocs/op) in a BENCH_PR<n>.json at the repo root, so
// regressions are visible in review without re-running the full sweep.
//
//	go run ./cmd/benchjson -o BENCH_PR9.json
//
// The grid points mirror the root bench_test.go benchmarks that the
// paper's evaluation (§5) pins: the pure construction algorithm at
// supergraph sizes 25–500, the per-envelope marshal cost of the binary
// wire codec (PR 3; the gob oracle retired in PR 6), the broadcast
// knowhow-query path over the modeled 802.11g medium with the transport's
// Call round-trip count as its own column (PR 5), the cached workflow
// accessors (PR 2), the concurrent-construction grid (goroutines ×
// supergraph size) against a shared fragment store, the
// concurrent-allocation grid (PR 4: K in-flight Initiates multiplexed
// over one host, serial vs concurrent), the repair-vs-replan grid
// (PR 6: recovering a mid-execution workflow from a single provider
// death by incremental plan repair versus a full replan from scratch),
// the sustained-serving rows (PR 7: a daemon under closed-loop load
// for a virtual minute, reported as throughput and latency quantiles in
// the report's "sustained" section; cmd/loadgen runs the wider grid),
// and the capability-discovery grid (PR 9: one Initiate over 10–1000
// hosts with a fixed 5-provider relevant set, index-routed vs broadcast
// — the RoundTrips column shows indexed rows flat in community size
// while broadcast grows O(hosts)).
//
// PR 10 adds the contention dimension: the concurrency grids
// (ConcurrentConstruct, ConcurrentInitiate, Discovery) sweep GOMAXPROCS
// via the -cpu flag, every row stamps its effective parallelism into the
// JSON, and the concurrency grids report a mutex-wait column sampled
// from runtime/metrics (/sync/mutex/wait/total:seconds) — nanoseconds
// all goroutines spent blocked on contended mutexes per operation, which
// makes lock contention visible even on low-core CI runners where ns/op
// cannot parallelize. ConcurrentInitiate also runs a sched=unsharded
// control row (schedule.Tuning{Shards: 1}) so the per-band shard split
// of the schedule manager is measured against the single-lock calendar
// on identical workloads. -cpuprofile and -mutexprofile write pprof
// profiles covering the whole grid for deeper digs (see CONTRIBUTING.md).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"regexp"
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"openwf/internal/community"
	"openwf/internal/core"
	"openwf/internal/engine"
	"openwf/internal/evalgen"
	"openwf/internal/model"
	"openwf/internal/proto"
	"openwf/internal/schedule"
	"openwf/internal/service"
	"openwf/internal/spec"
)

// result is one benchmark grid point.
type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// RoundTrips is the inmem transport's Call round-trip count per
	// operation (requests only — each opens one request/reply exchange),
	// reported by the distributed grid points via b.ReportMetric. The
	// batched CFB protocol (PR 5) is measured directly on this column.
	RoundTrips float64 `json:"round_trips_per_op,omitempty"`
	// GOMAXPROCS is the effective parallelism the row ran under (pinned
	// by the run helper from the -cpu sweep), not the process default.
	GOMAXPROCS int `json:"gomaxprocs"`
	// MutexWaitNs is the nanoseconds all goroutines spent blocked on
	// contended mutexes per operation over the row's timed region,
	// sampled from runtime/metrics (/sync/mutex/wait/total:seconds).
	// Reported by the concurrency grids; the column where lock sharding
	// shows up even when a low-core runner cannot show wall-time scaling.
	MutexWaitNs float64 `json:"mutex_wait_ns_per_op,omitempty"`
}

// report is the emitted file.
type report struct {
	GoVersion  string `json:"go_version"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// CPUSweep is the -cpu flag's GOMAXPROCS grid; the concurrency rows
	// run once per entry.
	CPUSweep   []int    `json:"cpu_sweep"`
	Benchmarks []result `json:"benchmarks"`
	// Sustained holds the PR 7 daemon serving rows: closed-loop
	// sustained load on the virtual clock, measured in throughput and
	// latency quantiles rather than ns/op (see evalgen.SustainedLoad and
	// cmd/loadgen for the full grid).
	Sustained []evalgen.SustainedResult `json:"sustained,omitempty"`
}

// chainWorkflow builds a valid n-task chain workflow for the cached
// accessor grid point.
func chainWorkflow(b *testing.B, n int) *model.Workflow {
	b.Helper()
	g := model.NewGraph()
	for i := 0; i < n; i++ {
		t := model.Task{
			ID:      model.TaskID(fmt.Sprintf("t%04d", i)),
			Mode:    model.Conjunctive,
			Inputs:  []model.LabelID{model.LabelID(fmt.Sprintf("l%04d", i))},
			Outputs: []model.LabelID{model.LabelID(fmt.Sprintf("l%04d", i+1))},
		}
		if err := g.AddTask(t); err != nil {
			b.Fatal(err)
		}
	}
	w, err := model.NewWorkflow(g)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// queryEnvelope is the broadcast-hot knowhow query shape measured by the
// marshal grid (mirrors internal/proto's benchEnvelope).
func queryEnvelope() proto.Envelope {
	return proto.Envelope{
		From: "host-a", To: "host-b", ReqID: 42, Workflow: "wf-1",
		Body: proto.FragmentQuery{Labels: []model.LabelID{
			"breakfast ingredients", "lunch ingredients", "omelet bar setup",
		}},
	}
}

// bidEnvelope is the auction-hot reply shape.
func bidEnvelope() proto.Envelope {
	return proto.Envelope{
		From: "host-b", To: "host-a", ReqID: 43, Workflow: "wf-1",
		Body: proto.Bid{
			Task: "cook omelets", ServicesOffered: 3,
			Specialization: 0.75, Deadline: time.Unix(1700000000, 0),
		},
	}
}

// repairCommunity builds the repair-vs-replan fixture: host00 initiates
// and knows the whole chain; every provider offers every service, so any
// survivor can absorb a dead provider's tasks.
func repairCommunity(b *testing.B, hosts, chain int, cfg *engine.Config) (*community.Community, spec.Spec) {
	b.Helper()
	var frags []*model.Fragment
	var regs []service.Registration
	for i := 0; i < chain; i++ {
		task := model.Task{
			ID:      model.TaskID(fmt.Sprintf("r-t%02d", i)),
			Mode:    model.Conjunctive,
			Inputs:  []model.LabelID{model.LabelID(fmt.Sprintf("r-l%02d", i))},
			Outputs: []model.LabelID{model.LabelID(fmt.Sprintf("r-l%02d", i+1))},
		}
		f, err := model.NewFragment(fmt.Sprintf("know-r%02d", i), task)
		if err != nil {
			b.Fatal(err)
		}
		frags = append(frags, f)
		regs = append(regs, service.Registration{
			Descriptor: service.Descriptor{Task: task.ID, Duration: 10 * time.Millisecond, Specialization: 0.5},
		})
	}
	specs := make([]community.HostSpec, hosts)
	for h := 0; h < hosts; h++ {
		specs[h] = community.HostSpec{ID: proto.Addr(fmt.Sprintf("host%02d", h))}
		if h > 0 {
			specs[h].Services = regs
		}
	}
	specs[0].Fragments = frags
	comm, err := community.New(community.Options{Engine: cfg, Seed: 1}, specs...)
	if err != nil {
		b.Fatal(err)
	}
	goal := model.LabelID(fmt.Sprintf("r-l%02d", chain))
	return comm, spec.Must([]model.LabelID{"r-l00"}, []model.LabelID{goal})
}

// mutexWaitSeconds reads the runtime's cumulative mutex wait: total
// seconds all goroutines have spent blocked on contended sync.Mutex /
// sync.RWMutex acquisitions since process start (always-on, no profile
// rate needed).
func mutexWaitSeconds() float64 {
	sample := []metrics.Sample{{Name: "/sync/mutex/wait/total:seconds"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() == metrics.KindFloat64 {
		return sample[0].Value.Float64()
	}
	return 0
}

// sampleMutexWait starts a mutex-wait sample over a benchmark's timed
// region; the returned func reports the per-op delta. Call it after
// setup (next to ResetTimer) and defer the stop — the testing package
// keeps the last invocation's Extra, which is also the invocation whose
// b.N set the recorded ns/op, so the columns describe the same run.
func sampleMutexWait(b *testing.B) func() {
	start := mutexWaitSeconds()
	return func() {
		delta := mutexWaitSeconds() - start
		b.ReportMetric(delta*1e9/float64(b.N), "mutexwait-ns/op")
	}
}

// parseCPUList parses the -cpu flag ("1,2,4") into the GOMAXPROCS sweep.
func parseCPUList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -cpu entry %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -cpu list")
	}
	return out, nil
}

func main() {
	out := flag.String("o", "BENCH_PR10.json", "output file (- for stdout)")
	cpuFlag := flag.String("cpu", "1,2,4", "comma-separated GOMAXPROCS sweep for the concurrency grids")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile covering the whole grid to this file")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex contention profile covering the whole grid to this file")
	benchFlag := flag.String("bench", "", "run only rows whose name matches this regexp (profiling workflow)")
	flag.Parse()

	cpus, err := parseCPUList(*cpuFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	var benchRe *regexp.Regexp
	if *benchFlag != "" {
		if benchRe, err = regexp.Compile(*benchFlag); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad -bench regexp: %v\n", err)
			os.Exit(1)
		}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}
	if *mutexProfile != "" {
		runtime.SetMutexProfileFraction(5)
		defer func() {
			f, err := os.Create(*mutexProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				return
			}
			defer f.Close()
			if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			}
		}()
	}

	var results []result
	// runAt pins GOMAXPROCS for the row's whole lifetime (setup included)
	// and stamps the effective parallelism into the emitted row — the one
	// place every grid's parallelism is controlled, replacing the per-row
	// ad-hoc pinning earlier BENCH files used.
	runAt := func(name string, cpu int, fn func(b *testing.B)) {
		if benchRe != nil && !benchRe.MatchString(name) {
			return
		}
		prev := runtime.GOMAXPROCS(cpu)
		r := testing.Benchmark(fn)
		runtime.GOMAXPROCS(prev)
		res := result{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			RoundTrips:  r.Extra["roundtrips/op"],
			GOMAXPROCS:  cpu,
			MutexWaitNs: r.Extra["mutexwait-ns/op"],
		}
		results = append(results, res)
		fmt.Fprintf(os.Stderr, "%-60s %10d iters %14.0f ns/op %10d B/op %8d allocs/op %8.0f rt/op %12.0f mutexwait-ns/op\n",
			name, r.N, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.RoundTrips, res.MutexWaitNs)
	}
	// run is the single-threaded default: the non-concurrency rows stay
	// pinned at GOMAXPROCS=1 for comparability with the earlier 1-CPU
	// BENCH files.
	run := func(name string, fn func(b *testing.B)) { runAt(name, 1, fn) }

	// The pure coloring algorithm against a fully assembled supergraph
	// (BenchmarkConstructionAlgorithm's grid).
	for _, tasks := range []int{25, 100, 500} {
		tasks := tasks
		run(fmt.Sprintf("ConstructionAlgorithm/tasks=%d", tasks), func(b *testing.B) {
			b.ReportAllocs()
			rng := rand.New(rand.NewSource(1))
			sc, err := evalgen.Generate(tasks, rng)
			if err != nil {
				b.Fatal(err)
			}
			frags, err := sc.Fragments()
			if err != nil {
				b.Fatal(err)
			}
			g, err := core.CollectAll(frags)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, ok := sc.SamplePath(6, rng)
				if !ok {
					b.Skip("no path of length 6")
				}
				b.StartTimer()
				if _, err := core.Construct(g, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// O(1) reset: must stay flat in graph size.
	for _, tasks := range []int{100, 500} {
		tasks := tasks
		run(fmt.Sprintf("ResetColoring/tasks=%d", tasks), func(b *testing.B) {
			b.ReportAllocs()
			rng := rand.New(rand.NewSource(1))
			sc, err := evalgen.Generate(tasks, rng)
			if err != nil {
				b.Fatal(err)
			}
			frags, err := sc.Fragments()
			if err != nil {
				b.Fatal(err)
			}
			g, err := core.CollectAll(frags)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.ResetColoring()
			}
		})
	}

	// Concurrent construction against a shared immutable fragment store
	// (the PR 2 Planner architecture): GOMAXPROCS × supergraph size.
	// ns/op is wall time per construction across all goroutines; on a
	// multi-core host it drops as the sweep widens (the store is
	// read-only and every goroutine owns its workspace scratch), while
	// on a single-core host it stays flat apart from scheduling
	// overhead. RunParallel spawns GOMAXPROCS goroutines under
	// SetParallelism(1), so the runAt pin is also the row's goroutine
	// count (the unification of the old per-row goroutines pinning).
	for _, tasks := range []int{100, 500} {
		for _, cpu := range cpus {
			tasks, cpu := tasks, cpu
			runAt(fmt.Sprintf("ConcurrentConstruct/cpu=%d/tasks=%d", cpu, tasks), cpu, func(b *testing.B) {
				b.ReportAllocs()
				pool, specs, err := evalgen.ConcurrentConstructSetup(tasks, 256, 6, 1)
				if err != nil {
					b.Fatal(err)
				}
				ctx := context.Background()
				var next atomic.Uint64
				b.SetParallelism(1)
				b.ResetTimer()
				stop := sampleMutexWait(b)
				defer stop()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						s := specs[next.Add(1)%uint64(len(specs))]
						if _, err := pool.Construct(ctx, s); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}

	// Cached workflow accessors (PR 2): TopoOrder on a 500-task chain
	// was ~384µs/op when recomputed per call, ~3µs/op served from the
	// construction-time cache.
	run("WorkflowTopoOrder/tasks=500", func(b *testing.B) {
		b.ReportAllocs()
		w := chainWorkflow(b, 500)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := w.TopoOrder(); len(got) != 500 {
				b.Fatalf("len = %d", len(got))
			}
		}
	})

	// Per-envelope marshal cost on the transports' pooled path (the
	// active wire codec; kept name-compatible with earlier BENCH files).
	run("EncodeToPooled", func(b *testing.B) {
		b.ReportAllocs()
		env := queryEnvelope()
		pool := sync.Pool{New: func() any { return new(bytes.Buffer) }}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf := pool.Get().(*bytes.Buffer)
			buf.Reset()
			if err := proto.EncodeTo(buf, env); err != nil {
				b.Fatal(err)
			}
			pool.Put(buf)
		}
	})

	// Marshal grid (PR 3, gob oracle retired in PR 6): full encode+decode
	// per envelope for the two broadcast-hot message shapes through the
	// binary wire codec. Row names stay comparable with earlier BENCH
	// files' codec=binary rows.
	for _, shape := range []struct {
		name string
		env  proto.Envelope
	}{
		{"FragmentQuery", queryEnvelope()},
		{"Bid", bidEnvelope()},
	} {
		shape := shape
		run(fmt.Sprintf("Marshal/%s/codec=binary", shape.name), func(b *testing.B) {
			b.ReportAllocs()
			pool := sync.Pool{New: func() any { return new(bytes.Buffer) }}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf := pool.Get().(*bytes.Buffer)
				buf.Reset()
				if err := proto.EncodeTo(buf, shape.env); err != nil {
					b.Fatal(err)
				}
				if _, err := proto.Decode(buf.Bytes()); err != nil {
					b.Fatal(err)
				}
				pool.Put(buf)
			}
		})
	}

	// Broadcast knowhow-query grid (PR 3, re-pinned by PR 5): a full
	// Initiate on the modeled 802.11g medium with broadcast (parallel)
	// community queries — the distributed path where the medium
	// dominates. All rows run the batched CFB protocol (the per-task
	// oracle retired in PR 6); the RoundTrips column is the inmem
	// Stats().Calls per Initiate.
	for _, hosts := range []int{5, 10} {
		hosts := hosts
		run(fmt.Sprintf("BroadcastQuery/hosts=%d", hosts), func(b *testing.B) {
			b.ReportAllocs()
			engCfg := evalgen.EvalEngineConfig()
			engCfg.ParallelQuery = true
			rng := rand.New(rand.NewSource(1))
			sc, err := evalgen.Generate(100, rng)
			if err != nil {
				b.Fatal(err)
			}
			comm, hostAddrs, err := evalgen.BuildCommunity(sc, evalgen.ExperimentConfig{
				Tasks: 100, Hosts: hosts, Seed: 1,
				LinkModel: evalgen.Wireless80211g(),
				Engine:    &engCfg,
			}, rng)
			if err != nil {
				b.Fatal(err)
			}
			defer comm.Close()
			comm.Network().ResetCounters()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, ok := sc.SamplePath(8, rng)
				if !ok {
					b.Skip("no path of length 8")
				}
				comm.ResetSchedules()
				b.StartTimer()
				plan, err := comm.Initiate(context.Background(), hostAddrs[0], s)
				if err != nil {
					b.Fatal(err)
				}
				if plan.Workflow.NumTasks() != 8 {
					b.Fatalf("workflow has %d tasks", plan.Workflow.NumTasks())
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(comm.Network().Stats().Calls)/float64(b.N), "roundtrips/op")
		})
	}

	// Concurrent allocation sessions (PR 4): K Initiates multiplexed
	// over one initiator host on the modeled 802.11g medium. The path is
	// latency-dominated (pairwise solicitation, query rounds), so
	// overlapping K sessions' waits is where the throughput comes from:
	// mode=serial runs the batch back to back, mode=concurrent
	// multiplexes it through Community.InitiateAll and the hosts'
	// session dispatchers. ns/op is per batch of K, so the acceptance
	// bar — ≥2x aggregate throughput at 4 in-flight — reads directly as
	// serial/inflight=4 ns/op ≥ 2 × concurrent/inflight=4 ns/op.
	// The grid sweeps GOMAXPROCS (PR 10): the same batch of sessions at
	// every -cpu point, plus a sched=unsharded control row (the
	// single-lock calendar, schedule.Tuning{Shards: 1}) at the contended
	// inflight=4 point — the mutex-wait column reads the shard split
	// directly as sharded vs unsharded on identical workloads.
	for _, cpu := range cpus {
		for _, row := range []struct {
			inflight  int
			serial    bool
			unsharded bool
		}{
			{1, false, false}, {2, false, false}, {4, true, false},
			{4, false, false}, {4, false, true}, {8, false, false},
		} {
			cpu, row := cpu, row
			mode := "concurrent"
			if row.serial {
				mode = "serial"
			}
			sched := ""
			tune := schedule.Tuning{}
			if row.unsharded {
				sched = "/sched=unsharded"
				tune = schedule.Tuning{Shards: 1}
			}
			runAt(fmt.Sprintf("ConcurrentInitiate/hosts=5/inflight=%d/mode=%s%s/cpu=%d", row.inflight, mode, sched, cpu), cpu, func(b *testing.B) {
				b.ReportAllocs()
				comm, hostAddrs, pool, err := evalgen.ConcurrentInitiateSetupTuned(5, 32, tune)
				if err != nil {
					b.Fatal(err)
				}
				defer comm.Close()
				ctx := context.Background()
				b.ResetTimer()
				stop := sampleMutexWait(b)
				defer stop()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					comm.ResetSchedules()
					batch := make([]spec.Spec, row.inflight)
					for j := range batch {
						batch[j] = pool[(i*row.inflight+j)%len(pool)]
					}
					b.StartTimer()
					if row.serial {
						for _, s := range batch {
							if _, err := comm.Initiate(ctx, hostAddrs[0], s); err != nil {
								b.Fatal(err)
							}
						}
					} else {
						if _, err := comm.InitiateAll(ctx, hostAddrs[0], batch); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}

	// Repair-vs-replan grid (PR 6): a provider dies under a mid-execution
	// workflow. mode=repair measures the engine's recovery path end to
	// end — lease-refresh failure detection, re-auctioning the dead
	// host's tasks among the survivors, redistributing the repaired
	// segments — timed from the crash to the Repaired event. mode=replan
	// measures the baseline strategy: discard the plan and run a fresh
	// Initiate around the dead member, timed from the re-Initiate alone
	// (detection latency excluded, which biases the comparison *toward*
	// replan — repair must win anyway). Both modes run on the real clock
	// over the instantaneous in-memory network, so every non-trivial cost
	// is either a dead-host call timeout or protocol work; RoundTrips
	// counts the Calls each recovery strategy spends.
	for _, mode := range []string{"repair", "replan"} {
		mode := mode
		run(fmt.Sprintf("RepairVsReplan/hosts=6/chain=8/mode=%s", mode), func(b *testing.B) {
			b.ReportAllocs()
			const hosts, chain = 6, 8
			cfg := engine.DefaultConfig()
			cfg.StartDelay = time.Hour // windows far out: allocation machinery only, no service runs
			cfg.TaskWindow = time.Minute
			cfg.CallTimeout = 100 * time.Millisecond // a dead host costs one bounded timeout per call
			cfg.LeaseRefreshInterval = 20 * time.Millisecond
			repaired := make(chan struct{}, 1)
			cfg.Observer.Repaired = func(string, []proto.Addr, []model.TaskID) {
				select {
				case repaired <- struct{}{}:
				default:
				}
			}
			comm, s := repairCommunity(b, hosts, chain, &cfg)
			defer comm.Close()
			ctx := context.Background()
			var roundTrips int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				comm.ResetSchedules()
				plan, err := comm.Initiate(ctx, "host00", s)
				if err != nil {
					b.Fatal(err)
				}
				victim := plan.Allocations[model.TaskID("r-t00")]
				if mode == "repair" {
					ectx, ecancel := context.WithCancel(ctx)
					done := make(chan error, 1)
					go func() {
						_, err := comm.Execute(ectx, "host00", plan, nil)
						done <- err
					}()
					// Wall time for segment distribution; the refresher is
					// ticking once Execute has handed out the plan.
					time.Sleep(20 * time.Millisecond)
					select {
					case <-repaired: // drop any stale signal
					default:
					}
					comm.Network().ResetCounters()
					b.StartTimer()
					if err := comm.CrashHost(victim); err != nil {
						b.Fatal(err)
					}
					select {
					case <-repaired:
					case err := <-done:
						b.Fatalf("execution ended before repair: %v", err)
					case <-time.After(10 * time.Second):
						b.Fatal("repair did not complete within 10s")
					}
					b.StopTimer()
					roundTrips += comm.Network().Stats().Calls
					ecancel()
					<-done
				} else {
					if err := comm.CrashHost(victim); err != nil {
						b.Fatal(err)
					}
					comm.ResetSchedules() // the discarded plan's slots are released
					comm.Network().ResetCounters()
					b.StartTimer()
					plan2, err := comm.Initiate(ctx, "host00", s)
					b.StopTimer()
					if err != nil {
						b.Fatal(err)
					}
					if len(plan2.Allocations) != chain {
						b.Fatalf("replan allocated %d of %d tasks", len(plan2.Allocations), chain)
					}
					roundTrips += comm.Network().Stats().Calls
				}
				if err := comm.RestartHost(victim); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(roundTrips)/float64(b.N), "roundtrips/op")
		})
	}

	// Capability-discovery grid (PR 9): one Initiate over a community
	// where only 5 fixed providers are relevant and every other member is
	// junk, index-routed vs broadcast. The RoundTrips column is the bar:
	// indexed Calls/Initiate must stay within 2x of the 10-host figure all
	// the way to 1000 hosts, while broadcast grows O(hosts).
	// The full host sweep runs at GOMAXPROCS=1 for comparability with the
	// PR 9 rows; the multi-core -cpu points rerun the hosts=300 pair,
	// where the PR 9 profile showed the network's global send lock was
	// the simulator (the inmem fast path now touches only its link
	// shard, so the mutex-wait column is the regression guard).
	for _, cpu := range cpus {
		hostGrid := []int{300}
		if cpu == 1 {
			hostGrid = []int{10, 100, 300, 1000}
		}
		for _, hosts := range hostGrid {
			for _, mode := range []string{"indexed", "broadcast"} {
				cpu, hosts, mode := cpu, hosts, mode
				runAt(fmt.Sprintf("Discovery/hosts=%d/providers=5/mode=%s/cpu=%d", hosts, mode, cpu), cpu, func(b *testing.B) {
					b.ReportAllocs()
					ctx := context.Background()
					comm, initiator, s, err := evalgen.DiscoverySetup(ctx, hosts, 5, 6, mode == "indexed", 1)
					if err != nil {
						b.Fatal(err)
					}
					defer comm.Close()
					comm.Network().ResetCounters()
					b.ResetTimer()
					stop := sampleMutexWait(b)
					defer stop()
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						comm.ResetSchedules()
						b.StartTimer()
						plan, err := comm.Initiate(ctx, initiator, s)
						if err != nil {
							b.Fatal(err)
						}
						if plan.Workflow.NumTasks() != 6 {
							b.Fatalf("workflow has %d tasks", plan.Workflow.NumTasks())
						}
					}
					b.StopTimer()
					b.ReportMetric(float64(comm.Network().Stats().Calls)/float64(b.N), "roundtrips/op")
				})
			}
		}
	}

	// The sustained serving rows (PR 7): a daemon on the virtual clock
	// under closed-loop load for a virtual minute — one under-capacity
	// row (no shedding expected) and one overload row (admission control
	// is the story). These are duration runs, not per-op benchmarks, so
	// they land in their own report section.
	var sustained []evalgen.SustainedResult
	for _, row := range []evalgen.SustainedConfig{
		{Clients: 8, Seed: 1},
		{Clients: 16, Workers: 2, Backlog: 2, Seed: 2},
	} {
		sr, err := evalgen.SustainedLoad(context.Background(), row)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: sustained: %v\n", err)
			os.Exit(1)
		}
		sustained = append(sustained, *sr)
		fmt.Fprintf(os.Stderr,
			"SustainedLoad/clients=%d/workers=%d/backlog=%d  %6.2f initiates/s  p50 %6.2fs p99 %6.2fs p999 %6.2fs  rejected %d\n",
			sr.Clients, sr.Workers, sr.Backlog, sr.Throughput,
			sr.LatencyP50, sr.LatencyP99, sr.LatencyP999, sr.Rejected)
	}

	rep := report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		CPUSweep:   cpus,
		Benchmarks: results,
		Sustained:  sustained,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
