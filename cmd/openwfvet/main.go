// Command openwfvet is the project-invariant vet tool: a unitchecker
// binary bundling the internal/analysis suite (clockcheck, seedcheck,
// ctxcheck, protokind, depcheck), driven by the go command:
//
//	go build -o bin/openwfvet ./cmd/openwfvet
//	go vet -vettool=$(pwd)/bin/openwfvet ./...
//
// Individual analyzers toggle like any vet flag, e.g.
// `-clockcheck=false`. See internal/analysis's package documentation
// and DESIGN.md §12 for the invariants each analyzer enforces and the
// directive escape hatches.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"openwf/internal/analysis"
)

func main() {
	unitchecker.Main(analysis.Analyzers()...)
}
