// Command figures regenerates the paper's result figures (§5): for every
// curve it builds the community, draws guaranteed-satisfiable
// specifications per path length, and reports the average time from
// specification to full allocation.
//
//	go run ./cmd/figures -fig all -runs 100
//	go run ./cmd/figures -fig 4 -runs 1000            # paper-scale averaging
//	go run ./cmd/figures -fig 6 -transport tcp        # empirical over real sockets
//	go run ./cmd/figures -fig 5 -csv out/             # CSV per figure
//
// Absolute times reflect today's hardware and Go runtime; the reproduced
// claims are the curve shapes (see EXPERIMENTS.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"openwf/internal/community"
	"openwf/internal/evalgen"
	"openwf/internal/stats"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 4, 5, 6, or all")
		runs      = flag.Int("runs", 100, "measurements per path length (paper: 1000)")
		seed      = flag.Int64("seed", 1, "random seed")
		transport = flag.String("transport", "inmem", "substrate for figure 6: inmem (802.11g model) or tcp")
		csvDir    = flag.String("csv", "", "directory to also write CSV files into")
		fastsim   = flag.Bool("fastsim", false, "skip gob marshaling on the simulated network")
	)
	flag.Parse()

	run := func(name string, f func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(figure %s regenerated in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	cfg := sweepConfig{runs: *runs, seed: *seed, csvDir: *csvDir, fastsim: *fastsim}
	run("4", func() error { return figure4(cfg) })
	run("5", func() error { return figure5(cfg) })
	run("6", func() error { return figure6(cfg, *transport) })
}

type sweepConfig struct {
	runs    int
	seed    int64
	csvDir  string
	fastsim bool
}

func lengths(from, to, step int) []int {
	var out []int
	for l := from; l <= to; l += step {
		out = append(out, l)
	}
	return out
}

// figure4 — "Simulation of 100 task nodes partitioned across different
// numbers of hosts": hosts 2–15, path lengths 2–22.
func figure4(cfg sweepConfig) error {
	figure := stats.NewFigure("Figure 4 — simulation, 100 task nodes, 2..15 hosts")
	for _, hosts := range []int{15, 10, 5, 4, 3, 2} {
		name := fmt.Sprintf("%d host", hosts)
		res, err := evalgen.RunExperiment(context.Background(), evalgen.ExperimentConfig{
			Tasks:          100,
			Hosts:          hosts,
			PathLengths:    lengths(2, 22, 2),
			Runs:           cfg.runs,
			Seed:           cfg.seed,
			DisableMarshal: cfg.fastsim,
		}, name)
		if err != nil {
			return err
		}
		figure.Series = append(figure.Series, res.Series)
		fmt.Fprintf(os.Stderr, "  %s: max path length %d, %d messages\n",
			name, res.MaxPathLength, res.Messages)
	}
	return emit(figure, cfg.csvDir, "figure4.csv")
}

// figure5 — "Simulation of different numbers of task nodes partitioned
// across 2 hosts": 25–500 tasks, path lengths 2–14.
func figure5(cfg sweepConfig) error {
	figure := stats.NewFigure("Figure 5 — simulation, 2 hosts, 25..500 task nodes")
	for _, tasks := range []int{500, 250, 100, 50, 25} {
		name := fmt.Sprintf("%d task", tasks)
		res, err := evalgen.RunExperiment(context.Background(), evalgen.ExperimentConfig{
			Tasks:          tasks,
			Hosts:          2,
			PathLengths:    lengths(2, 14, 2),
			Runs:           cfg.runs,
			Seed:           cfg.seed,
			DisableMarshal: cfg.fastsim,
		}, name)
		if err != nil {
			return err
		}
		figure.Series = append(figure.Series, res.Series)
		fmt.Fprintf(os.Stderr, "  %s: max path length %d, %d messages\n",
			name, res.MaxPathLength, res.Messages)
	}
	return emit(figure, cfg.csvDir, "figure5.csv")
}

// figure6 — "Empirical performance of ad hoc wireless networking for
// different numbers of task nodes partitioned across 4 hosts": 25–100
// tasks, path lengths 2–20, over the 802.11g latency model (or real TCP).
func figure6(cfg sweepConfig, transport string) error {
	figure := stats.NewFigure("Figure 6 — empirical configuration, 4 hosts (802.11g ad hoc)")
	for _, tasks := range []int{100, 50, 25} {
		name := fmt.Sprintf("%d task", tasks)
		expCfg := evalgen.ExperimentConfig{
			Tasks:       tasks,
			Hosts:       4,
			PathLengths: lengths(2, 20, 2),
			Runs:        cfg.runs,
			Seed:        cfg.seed,
		}
		switch transport {
		case "inmem":
			expCfg.LinkModel = evalgen.Wireless80211g()
		case "tcp":
			expCfg.Transport = community.TCP
		default:
			return fmt.Errorf("unknown transport %q", transport)
		}
		res, err := evalgen.RunExperiment(context.Background(), expCfg, name)
		if err != nil {
			return err
		}
		figure.Series = append(figure.Series, res.Series)
		fmt.Fprintf(os.Stderr, "  %s: max path length %d (the paper's per-size cutoffs)\n",
			name, res.MaxPathLength)
	}
	return emit(figure, cfg.csvDir, "figure6.csv")
}

func emit(figure *stats.Figure, csvDir, filename string) error {
	if err := figure.WriteTable(os.Stdout); err != nil {
		return err
	}
	if csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(csvDir, filename))
	if err != nil {
		return err
	}
	defer f.Close()
	return figure.WriteCSV(f)
}
