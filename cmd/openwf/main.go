// Command openwf runs an open-workflow community from an XML deployment
// configuration (§4.1): it loads each device's task and service
// definitions, forms the community, poses a problem specification at the
// chosen initiator, prints the dynamically constructed workflow and its
// allocation, and optionally executes it.
//
//	go run ./cmd/openwf -config deploy.xml -initiator manager -problem meals
//	go run ./cmd/openwf -config deploy.xml -initiator manager \
//	    -triggers "breakfast ingredients,lunch ingredients" \
//	    -goals "breakfast served,lunch served" -execute
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"openwf/internal/community"
	"openwf/internal/engine"
	"openwf/internal/model"
	"openwf/internal/proto"
	"openwf/internal/spec"
	"openwf/internal/trace"
	"openwf/internal/xmlconfig"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "openwf: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		configPath = flag.String("config", "", "XML deployment configuration (required)")
		initiator  = flag.String("initiator", "", "host that poses the problem (required)")
		problem    = flag.String("problem", "", "named <problem> from the configuration")
		triggers   = flag.String("triggers", "", "comma-separated triggering labels (alternative to -problem)")
		goals      = flag.String("goals", "", "comma-separated goal labels (alternative to -problem)")
		execute    = flag.Bool("execute", false, "execute the allocated workflow")
		timeout    = flag.Duration("timeout", 2*time.Minute, "execution timeout")
		transport  = flag.String("transport", "inmem", "substrate: inmem or tcp")
		startDelay = flag.Duration("startdelay", time.Second, "lead time before the first execution window")
		taskWindow = flag.Duration("window", time.Second, "execution window length per task")
		traceMsgs  = flag.Bool("trace", false, "stream every message to stderr")
	)
	flag.Parse()

	if *configPath == "" || *initiator == "" {
		flag.Usage()
		return fmt.Errorf("-config and -initiator are required")
	}
	dep, err := xmlconfig.LoadFile(*configPath)
	if err != nil {
		return err
	}

	s, err := resolveSpec(dep, *problem, *triggers, *goals)
	if err != nil {
		return err
	}

	engCfg := engine.DefaultConfig()
	engCfg.StartDelay = *startDelay
	engCfg.TaskWindow = *taskWindow
	opts := community.Options{Engine: &engCfg}
	if *traceMsgs {
		opts.Trace = trace.NewWriter(os.Stderr)
	}
	switch *transport {
	case "inmem":
		opts.Transport = community.InMem
	case "tcp":
		opts.Transport = community.TCP
	default:
		return fmt.Errorf("unknown transport %q", *transport)
	}

	com, err := community.New(opts, dep.Hosts...)
	if err != nil {
		return err
	}
	defer com.Close()

	fmt.Printf("community: %d hosts over %s\n", len(dep.Hosts), *transport)
	fmt.Printf("problem:   %s\n", s)

	start := time.Now()
	plan, err := com.Initiate(context.Background(), proto.Addr(*initiator), s)
	if err != nil {
		return fmt.Errorf("construction/allocation: %w", err)
	}
	fmt.Printf("constructed and allocated in %v (%d fragments collected, %d nodes explored, %d replans)\n\n",
		time.Since(start).Round(time.Microsecond),
		plan.Construction.FragmentsCollected, plan.Construction.Explored, plan.Replans)

	fmt.Println("workflow:")
	for _, id := range plan.Workflow.TopoOrder() {
		t, _ := plan.Workflow.Task(id)
		meta := plan.Metas[id]
		fmt.Printf("  %-30s → %-15s window %s..%s\n",
			t.ID, plan.Allocations[id],
			meta.Start.Format("15:04:05.000"), meta.End.Format("15:04:05.000"))
		fmt.Printf("      %v -> %v\n", t.Inputs, t.Outputs)
	}

	if !*execute {
		return nil
	}
	fmt.Println("\nexecuting...")
	// The triggering labels hold by assumption; without payloads for
	// them no task's inputs ever materialize and execution stalls.
	trigData := make(map[model.LabelID][]byte, len(s.Triggers))
	for _, l := range s.Triggers {
		trigData[l] = []byte("<" + string(l) + ">")
	}
	execCtx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	report, err := com.Execute(execCtx, proto.Addr(*initiator), plan, trigData)
	if err != nil && (report == nil || !errors.Is(err, context.DeadlineExceeded)) {
		return fmt.Errorf("execution: %w", err)
	}
	fmt.Printf("completed: %v (%d/%d tasks, %v)\n",
		report.Completed, report.TasksDone, plan.Workflow.NumTasks(),
		report.Elapsed.Round(time.Millisecond))
	for _, g := range plan.Workflow.Out() {
		fmt.Printf("  goal %-28q = %s\n", g, report.Goals[g])
	}
	if len(report.Failures) > 0 {
		return fmt.Errorf("task failures: %s", strings.Join(report.Failures, "; "))
	}
	return nil
}

func resolveSpec(dep *xmlconfig.Deployment, problem, triggers, goals string) (spec.Spec, error) {
	if problem != "" {
		for _, p := range dep.Problems {
			if p.Name == problem {
				return p.Spec, nil
			}
		}
		return spec.Spec{}, fmt.Errorf("no problem %q in configuration", problem)
	}
	if triggers == "" || goals == "" {
		if len(dep.Problems) == 1 {
			return dep.Problems[0].Spec, nil
		}
		return spec.Spec{}, fmt.Errorf("specify -problem or both -triggers and -goals")
	}
	return spec.New(splitLabels(triggers), splitLabels(goals))
}

func splitLabels(s string) []model.LabelID {
	parts := strings.Split(s, ",")
	out := make([]model.LabelID, 0, len(parts))
	for _, p := range parts {
		if trimmed := strings.TrimSpace(p); trimmed != "" {
			out = append(out, model.LabelID(trimmed))
		}
	}
	return out
}
