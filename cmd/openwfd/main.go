// Command openwfd runs a long-lived workflow daemon: it loads an XML
// deployment configuration (the same schema cmd/openwf uses), starts the
// community, and serves problem specifications over HTTP through a
// bounded, admission-controlled backlog until SIGINT/SIGTERM, then
// drains and exits.
//
//	go run ./cmd/openwfd -config deploy.xml -initiator manager -listen :8080
//
// Endpoints:
//
//	POST /submit    {"triggers": ["a"], "goals": ["g"], "class": "high"}
//	                → 200 with the allocated plan summary,
//	                  429 when the class backlog is at capacity,
//	                  503 once draining has begun
//	GET  /metrics   Prometheus text exposition (counters, gauges,
//	                latency summaries — see DESIGN.md §11)
//	GET  /healthz   200 while serving, 503 while draining
//	GET  /statusz   JSON serving snapshot (accepted/rejected/completed/
//	                aborted, backlog depth, latency quantiles)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"openwf/internal/backlog"
	"openwf/internal/community"
	"openwf/internal/daemon"
	"openwf/internal/engine"
	"openwf/internal/model"
	"openwf/internal/proto"
	"openwf/internal/spec"
	"openwf/internal/xmlconfig"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "openwfd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		configPath = flag.String("config", "", "XML deployment configuration (required)")
		initiator  = flag.String("initiator", "", "host that initiates workflows (required)")
		listen     = flag.String("listen", ":8080", "HTTP listen address")
		workers    = flag.Int("workers", 0, "concurrent Initiates (0 = host worker bound)")
		backlogCap = flag.Int("backlog", 0, "per-class backlog capacity (0 = default)")
		execute    = flag.Bool("execute", false, "execute each allocated workflow, not just plan it")
		transport  = flag.String("transport", "inmem", "substrate: inmem or tcp")
		startDelay = flag.Duration("startdelay", time.Second, "lead time before the first execution window")
		taskWindow = flag.Duration("window", time.Second, "execution window length per task")
		drainWait  = flag.Duration("drain", time.Minute, "how long shutdown waits for admitted work")
	)
	flag.Parse()
	if *configPath == "" || *initiator == "" {
		flag.Usage()
		return fmt.Errorf("-config and -initiator are required")
	}

	dep, err := xmlconfig.LoadFile(*configPath)
	if err != nil {
		return err
	}

	engCfg := engine.DefaultConfig()
	engCfg.StartDelay = *startDelay
	engCfg.TaskWindow = *taskWindow
	opts := community.Options{Engine: &engCfg}
	switch *transport {
	case "inmem":
		opts.Transport = community.InMem
	case "tcp":
		opts.Transport = community.TCP
	default:
		return fmt.Errorf("unknown transport %q", *transport)
	}

	cfg := daemon.Config{Workers: *workers, Backlog: *backlogCap, Execute: *execute}
	if *execute {
		// The daemon cannot know which labels a future request will
		// trigger with, so pre-build payloads for every label any
		// configured problem triggers (the openwf convention: triggers
		// hold by assumption).
		cfg.Triggers = make(map[model.LabelID][]byte)
		for _, p := range dep.Problems {
			for _, l := range p.Spec.Triggers {
				cfg.Triggers[l] = []byte("<" + string(l) + ">")
			}
		}
	}
	srv, err := daemon.Start(opts, proto.Addr(*initiator), cfg, dep.Hosts...)
	if err != nil {
		return err
	}

	var draining atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("POST /submit", func(w http.ResponseWriter, r *http.Request) {
		handleSubmit(srv, dep, w, r)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = srv.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(srv.Snapshot())
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		_ = srv.Close()
		return err
	}
	httpSrv := &http.Server{Handler: mux}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()
	fmt.Printf("openwfd: %d hosts over %s, serving on %s (initiator %s)\n",
		len(dep.Hosts), *transport, ln.Addr(), *initiator)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		// Clean shutdown: stop admitting, finish what was admitted,
		// then tear everything down.
		fmt.Fprintln(os.Stderr, "openwfd: signal received, draining...")
		draining.Store(true)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		err = srv.Drain(drainCtx)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "openwfd: drain incomplete (%v), aborting remainder\n", err)
		}
	case err := <-httpErr:
		_ = srv.Close()
		return fmt.Errorf("http: %w", err)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = httpSrv.Shutdown(shutCtx)
	cancel()
	if err := srv.Close(); err != nil {
		return err
	}
	snap := srv.Snapshot()
	fmt.Printf("openwfd: served %d (rejected %d, aborted %d), p50 %.3fs p99 %.3fs\n",
		snap.Completed, snap.Rejected, snap.Aborted, snap.LatencyP50, snap.LatencyP99)
	return nil
}

// submitRequest is the POST /submit body. Either name a configured
// <problem>, or give triggers and goals directly.
type submitRequest struct {
	Problem  string   `json:"problem,omitempty"`
	Triggers []string `json:"triggers,omitempty"`
	Goals    []string `json:"goals,omitempty"`
	Class    string   `json:"class,omitempty"` // "low", "normal" (default), "high"
}

type submitResponse struct {
	Tasks       int               `json:"tasks"`
	Allocations map[string]string `json:"allocations"`
	Replans     int               `json:"replans"`
	Executed    bool              `json:"executed,omitempty"`
	WaitSec     float64           `json:"wait_sec"`
	LatencySec  float64           `json:"latency_sec"`
	Class       string            `json:"class"`
}

func handleSubmit(srv *daemon.Server, dep *xmlconfig.Deployment, w http.ResponseWriter, r *http.Request) {
	var body submitRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	s, err := resolveSpec(dep, body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	class, err := parseClass(body.Class)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	res, err := srv.Do(r.Context(), daemon.Request{Spec: s, Class: class})
	var rej *backlog.RejectedError
	switch {
	case errors.As(err, &rej):
		// Typed backpressure: the client should retry with backoff.
		w.Header().Set("Retry-After", "1")
		http.Error(w, rej.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, daemon.ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil: // canceled wait
		http.Error(w, err.Error(), http.StatusRequestTimeout)
		return
	case res.Err != nil:
		http.Error(w, "serving: "+res.Err.Error(), http.StatusUnprocessableEntity)
		return
	}

	resp := submitResponse{
		Tasks:       res.Plan.Workflow.NumTasks(),
		Allocations: make(map[string]string, len(res.Plan.Allocations)),
		Replans:     res.Plan.Replans,
		Executed:    res.Report != nil && res.Report.Completed,
		WaitSec:     res.Wait.Seconds(),
		LatencySec:  res.Latency.Seconds(),
		Class:       res.Class.String(),
	}
	for task, host := range res.Plan.Allocations {
		resp.Allocations[string(task)] = string(host)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func resolveSpec(dep *xmlconfig.Deployment, body submitRequest) (spec.Spec, error) {
	if body.Problem != "" {
		for _, p := range dep.Problems {
			if p.Name == body.Problem {
				return p.Spec, nil
			}
		}
		return spec.Spec{}, fmt.Errorf("no problem %q in configuration", body.Problem)
	}
	if len(body.Triggers) == 0 || len(body.Goals) == 0 {
		return spec.Spec{}, fmt.Errorf("need problem, or triggers and goals")
	}
	return spec.New(toLabels(body.Triggers), toLabels(body.Goals))
}

func toLabels(ss []string) []model.LabelID {
	out := make([]model.LabelID, len(ss))
	for i, s := range ss {
		out[i] = model.LabelID(s)
	}
	return out
}

func parseClass(s string) (backlog.Class, error) {
	switch s {
	case "", "normal":
		return backlog.Normal, nil
	case "low":
		return backlog.Low, nil
	case "high":
		return backlog.High, nil
	}
	return 0, fmt.Errorf("unknown class %q (want low, normal, or high)", s)
}
