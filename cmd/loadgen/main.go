// Command loadgen drives a workflow daemon with sustained closed-loop
// load on the seeded virtual clock and emits the serving grid as JSON:
// throughput (Initiates per virtual second), latency quantiles
// (p50/p99/p999, queue wait included), admission-control shedding, and
// the clean-drain invariants (zero residual backlog, holds, and
// commitments). It is the measurement harness behind the PR 7 acceptance
// bar: a daemon serving for minutes of virtual time must hold bounded
// state, shed load with typed rejections, and drain to nothing.
//
//	go run ./cmd/loadgen                    # default grid → BENCH_PR7.json
//	go run ./cmd/loadgen -duration 5m -o -  # longer window, stdout
//	go run ./cmd/loadgen -clients 32 -workers 2 -backlog 2   # one custom row
//
// Without -clients, the default grid sweeps offered concurrency across
// an under-capacity row, a saturation row, and an overload row against a
// deliberately tiny backlog — the three regimes the serving story needs:
// no shedding, queue growth, and typed backpressure.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"openwf/internal/evalgen"
)

// gridReport is the emitted file.
type gridReport struct {
	GoVersion  string                    `json:"go_version"`
	GOARCH     string                    `json:"goarch"`
	NumCPU     int                       `json:"num_cpu"`
	GOMAXPROCS int                       `json:"gomaxprocs"`
	Sustained  []evalgen.SustainedResult `json:"sustained"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out      = flag.String("o", "BENCH_PR7.json", "output file (- for stdout)")
		tasks    = flag.Int("tasks", 60, "supergraph size")
		hosts    = flag.Int("hosts", 6, "community size")
		clients  = flag.Int("clients", 0, "closed-loop submitters (0 = run the default grid)")
		workers  = flag.Int("workers", 0, "daemon worker pool (0 = host bound)")
		backlogN = flag.Int("backlog", 0, "per-class backlog capacity (0 = daemon default)")
		duration = flag.Duration("duration", time.Minute, "virtual serving window per row")
		seed     = flag.Int64("seed", 1, "base rng seed")
	)
	flag.Parse()

	var grid []evalgen.SustainedConfig
	if *clients > 0 {
		grid = []evalgen.SustainedConfig{{
			Clients: *clients, Workers: *workers, Backlog: *backlogN,
		}}
	} else {
		grid = []evalgen.SustainedConfig{
			// Under capacity: offered load well below the worker pool;
			// the acceptance bar requires zero rejections here.
			{Clients: 4},
			// Saturation: offered load at the default worker bound; queue
			// wait appears in the tail but admission still keeps up.
			{Clients: 16},
			// Overload: many clients against a starved daemon; admission
			// control must shed with typed rejections, not queue without
			// bound.
			{Clients: 32, Workers: 2, Backlog: 2},
		}
	}

	rep := gridReport{
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for i, cfg := range grid {
		cfg.Tasks = *tasks
		cfg.Hosts = *hosts
		cfg.Duration = *duration
		cfg.Seed = *seed + int64(i)
		res, err := evalgen.SustainedLoad(context.Background(), cfg)
		if err != nil {
			return err
		}
		rep.Sustained = append(rep.Sustained, *res)
		fmt.Fprintf(os.Stderr,
			"clients=%-3d workers=%-2d backlog=%-3d  %7.2f initiates/s  p50 %6.2fs  p99 %6.2fs  p999 %6.2fs  completed %-5d rejected %-6d wall %v\n",
			res.Clients, res.Workers, res.Backlog, res.Throughput,
			res.LatencyP50, res.LatencyP99, res.LatencyP999,
			res.Completed, res.Rejected, res.WallElapsed.Round(time.Millisecond))
		if res.FinalBacklog != 0 || res.FinalHolds != 0 || res.FinalCommitments != 0 {
			return fmt.Errorf("unclean drain on row %d: backlog %d, holds %d, commitments %d",
				i, res.FinalBacklog, res.FinalHolds, res.FinalCommitments)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	return nil
}
